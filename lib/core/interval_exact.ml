open Relpipe_model
module Obs = Relpipe_obs.Obs
module W = Relpipe_util.Workspace

let max_procs = 14

(* Reusable domain-local scratch: the DP table, the parent table, and the
   per-call platform/pipeline snapshots.  Flat arrays, cell (e, u, mask) at
   [((e * m) + u) * masks + mask].  Reusing them across calls removes the
   dominant allocation cost of small solves; the requested prefix is
   re-initialised on every call so nothing leaks between solves (see
   test/test_reference.ml workspace-reuse tests). *)
let ws_dp = W.floats ()
let ws_parent = W.ints ()
let ws_env = W.floats ()

let min_latency instance =
  let { Instance.pipeline; platform } = instance in
  let n = Pipeline.length pipeline and m = Platform.size platform in
  if m > max_procs then
    invalid_arg "Interval_exact.min_latency: too many processors (cap 14)";
  let masks = 1 lsl m in
  let obs = Obs.ambient () in
  Obs.incr obs "core.interval_dp.runs";
  Obs.add obs "core.interval_dp.cells" ((n + 1) * m * masks);
  (* Successful relaxations, counted locally and flushed once at the end
     so the hot loop never touches an atomic. *)
  let updates = ref 0 in
  (* Snapshot the platform into flat arrays: the hot loop must not allocate
     [Platform.Proc _] constructors or chase the platform representation.
     Layout in [env]: work prefixes (n+1) | deltas (n+1) | speeds (m)
     | Pin->v bandwidths (m) | u->Pout bandwidths (m) | u->v bandwidths
     (m*m, diagonal unused). *)
  let off_wp = 0 in
  let off_delta = n + 1 in
  let off_spd = off_delta + n + 1 in
  let off_bw_in = off_spd + m in
  let off_bw_out = off_bw_in + m in
  let off_bw_pp = off_bw_out + m in
  let env = W.get_floats ws_env ~len:(off_bw_pp + (m * m)) ~fill:0.0 in
  Array.blit (Pipeline.work_prefixes pipeline) 0 env off_wp (n + 1);
  for k = 0 to n do
    env.(off_delta + k) <- Pipeline.delta pipeline k
  done;
  for u = 0 to m - 1 do
    env.(off_spd + u) <- Platform.speed platform u;
    env.(off_bw_in + u) <-
      Platform.bandwidth platform Platform.Pin (Platform.Proc u);
    env.(off_bw_out + u) <-
      Platform.bandwidth platform (Platform.Proc u) Platform.Pout;
    for v = 0 to m - 1 do
      if u <> v then
        env.(off_bw_pp + (u * m) + v) <-
          Platform.bandwidth platform (Platform.Proc u) (Platform.Proc v)
    done
  done;
  (* dp cell ((e * m) + u) * masks + mask: cheapest cost of stages 1..e
     split into intervals with distinct processors (set = mask), last
     interval on u; includes the input communication and all
     computations/communications up to stage e, excludes the final
     output. *)
  let cells = (n + 1) * m * masks in
  let dp = W.get_floats ws_dp ~len:cells ~fill:Float.infinity in
  let parent = W.get_ints ws_parent ~len:cells ~fill:(-1) in
  for v = 0 to m - 1 do
    let input = env.(off_delta) /. env.(off_bw_in + v) in
    let sv = env.(off_spd + v) in
    let cell = 1 lsl v in
    for e = 1 to n do
      dp.((((e * m) + v) * masks) + cell) <-
        input +. ((env.(off_wp + e) -. env.(off_wp)) /. sv)
    done
  done;
  for e = 1 to n - 1 do
    let delta_e = env.(off_delta + e) in
    let wp_e = env.(off_wp + e) in
    for u = 0 to m - 1 do
      let row = ((e * m) + u) * masks in
      let bw_row = off_bw_pp + (u * m) in
      for mask = 0 to masks - 1 do
        let base = dp.(row + mask) in
        if Float.is_finite base then
          for v = 0 to m - 1 do
            if mask land (1 lsl v) = 0 then begin
              let comm = delta_e /. env.(bw_row + v) in
              let nmask = mask lor (1 lsl v) in
              let sv = env.(off_spd + v) in
              let base_comm = base +. comm in
              let col = (v * masks) + nmask in
              for e' = e + 1 to n do
                let cand =
                  base_comm +. ((env.(off_wp + e') -. wp_e) /. sv)
                in
                let cell = (e' * m * masks) + col in
                if cand < dp.(cell) then begin
                  dp.(cell) <- cand;
                  parent.(cell) <- (e * m) + u;
                  incr updates
                end
              done
            end
          done
      done
    done
  done;
  (* Close against Pout. *)
  let best = ref Float.infinity and best_u = ref (-1) and best_mask = ref 0 in
  for u = 0 to m - 1 do
    let out = env.(off_delta + n) /. env.(off_bw_out + u) in
    let row = ((n * m) + u) * masks in
    for mask = 0 to masks - 1 do
      let total = dp.(row + mask) +. out in
      if total < !best then begin
        best := total;
        best_u := u;
        best_mask := mask
      end
    done
  done;
  Obs.add obs "core.interval_dp.states" !updates;
  if not (Float.is_finite !best) then None
  else begin
    (* Reconstruct the interval chain. *)
    let rec rebuild e u mask acc =
      match parent.((((e * m) + u) * masks) + mask) with
      | -1 -> { Mapping.first = 1; last = e; procs = [ u ] } :: acc
      | code ->
          let pe = code / m and pu = code mod m in
          rebuild pe pu
            (mask land lnot (1 lsl u))
            ({ Mapping.first = pe + 1; last = e; procs = [ u ] } :: acc)
    in
    let intervals = rebuild n !best_u !best_mask [] in
    Some (!best, Mapping.make ~n ~m intervals)
  end

(* ------------------------------------------------------------------ *)
(* Layer-parallel DP (PR 9).  A cell (e', v, nmask) only ever receives
   relaxations from cells whose mask is [nmask] minus one processor, so
   the table decomposes into independent layers by mask popcount: all of
   layer k-1 is final before any layer-k cell needs it, and no two cells
   inside a layer depend on each other.  Each layer is recomputed
   pull-style over the pool — one job per mask, each job owning every
   (e', v) cell of its mask — scanning the candidate sources in exactly
   the serial nest's order (e ascending, then u ascending) with the same
   strict-< update, so values {e and} tie-breaking parents land
   bit-for-bit where [min_latency] puts them, at every worker count. *)

module Pool = Relpipe_pool.Pool

let popcount mask =
  let rec go acc mask = if mask = 0 then acc else go (acc + 1) (mask land (mask - 1)) in
  go 0 mask

let min_latency_par ?(workers = 1) instance =
  let { Instance.pipeline; platform } = instance in
  let n = Pipeline.length pipeline and m = Platform.size platform in
  if m > max_procs then
    invalid_arg "Interval_exact.min_latency_par: too many processors (cap 14)";
  let masks = 1 lsl m in
  let obs = Obs.ambient () in
  Obs.incr obs "core.exact.par.dp.runs";
  Obs.add obs "core.exact.par.dp.cells" ((n + 1) * m * masks);
  (* Same flat snapshot layout as [min_latency]. *)
  let off_wp = 0 in
  let off_delta = n + 1 in
  let off_spd = off_delta + n + 1 in
  let off_bw_in = off_spd + m in
  let off_bw_out = off_bw_in + m in
  let off_bw_pp = off_bw_out + m in
  let env = W.get_floats ws_env ~len:(off_bw_pp + (m * m)) ~fill:0.0 in
  Array.blit (Pipeline.work_prefixes pipeline) 0 env off_wp (n + 1);
  for k = 0 to n do
    env.(off_delta + k) <- Pipeline.delta pipeline k
  done;
  for u = 0 to m - 1 do
    env.(off_spd + u) <- Platform.speed platform u;
    env.(off_bw_in + u) <-
      Platform.bandwidth platform Platform.Pin (Platform.Proc u);
    env.(off_bw_out + u) <-
      Platform.bandwidth platform (Platform.Proc u) Platform.Pout;
    for v = 0 to m - 1 do
      if u <> v then
        env.(off_bw_pp + (u * m) + v) <-
          Platform.bandwidth platform (Platform.Proc u) (Platform.Proc v)
    done
  done;
  let cells = (n + 1) * m * masks in
  let dp = W.get_floats ws_dp ~len:cells ~fill:Float.infinity in
  let parent = W.get_ints ws_parent ~len:cells ~fill:(-1) in
  (* Layer 1: base cells, cheap enough to fill on the caller. *)
  for v = 0 to m - 1 do
    let input = env.(off_delta) /. env.(off_bw_in + v) in
    let sv = env.(off_spd + v) in
    let cell = 1 lsl v in
    for e = 1 to n do
      dp.((((e * m) + v) * masks) + cell) <-
        input +. ((env.(off_wp + e) -. env.(off_wp)) /. sv)
    done
  done;
  (* Masks of each popcount layer, ascending within a layer. *)
  let layer = Array.make (m + 1) [] in
  for mask = masks - 1 downto 1 do
    let k = popcount mask in
    layer.(k) <- mask :: layer.(k)
  done;
  (* Recompute every (e', v) cell of [nmask] from the final layer-(k-1)
     values; returns the number of strict improvements so the update
     total stays comparable with the serial kernel's. *)
  let relax_mask nmask =
    let updates = ref 0 in
    for v = 0 to m - 1 do
      if nmask land (1 lsl v) <> 0 then begin
        let smask = nmask lxor (1 lsl v) in
        let sv = env.(off_spd + v) in
        let col = (v * masks) + nmask in
        for e = 1 to n - 1 do
          let delta_e = env.(off_delta + e) in
          let wp_e = env.(off_wp + e) in
          for u = 0 to m - 1 do
            if smask land (1 lsl u) <> 0 then begin
              let base = dp.((((e * m) + u) * masks) + smask) in
              if Float.is_finite base then begin
                let base_comm =
                  base +. (delta_e /. env.(off_bw_pp + (u * m) + v))
                in
                for e' = e + 1 to n do
                  let cand = base_comm +. ((env.(off_wp + e') -. wp_e) /. sv) in
                  let cell = (e' * m * masks) + col in
                  if cand < dp.(cell) then begin
                    (* devlint: allow RP-S301 — cell owned by this [nmask] job *)
                    dp.(cell) <- cand;
                    (* devlint: allow RP-S301 — cell owned by this [nmask] job *)
                    parent.(cell) <- (e * m) + u;
                    incr updates
                  end
                done
              end
            end
          done
        done
      end
    done;
    !updates
  in
  let total_updates = ref 0 and layers_run = ref 0 in
  (* Layers beyond [n] cannot host a finite cell (an interval per
     processor needs at least one stage each), so skip them. *)
  for k = 2 to min m n do
    match layer.(k) with
    | [] -> ()
    | l ->
        incr layers_run;
        let jobs = Array.of_list l in
        let counts, _stats = Pool.map ?obs ~workers relax_mask jobs in
        Array.iter (fun c -> total_updates := !total_updates + c) counts
  done;
  Obs.add obs "core.exact.par.dp.layers" !layers_run;
  Obs.add obs "core.exact.par.dp.states" !total_updates;
  (* Close against Pout — same scan order as the serial kernel. *)
  let best = ref Float.infinity and best_u = ref (-1) and best_mask = ref 0 in
  for u = 0 to m - 1 do
    let out = env.(off_delta + n) /. env.(off_bw_out + u) in
    let row = ((n * m) + u) * masks in
    for mask = 0 to masks - 1 do
      let total = dp.(row + mask) +. out in
      if total < !best then begin
        best := total;
        best_u := u;
        best_mask := mask
      end
    done
  done;
  if not (Float.is_finite !best) then None
  else begin
    let rec rebuild e u mask acc =
      match parent.((((e * m) + u) * masks) + mask) with
      | -1 -> { Mapping.first = 1; last = e; procs = [ u ] } :: acc
      | code ->
          let pe = code / m and pu = code mod m in
          rebuild pe pu
            (mask land lnot (1 lsl u))
            ({ Mapping.first = pe + 1; last = e; procs = [ u ] } :: acc)
    in
    let intervals = rebuild n !best_u !best_mask [] in
    Some (!best, Mapping.make ~n ~m intervals)
  end

(* ------------------------------------------------------------------ *)
(* Resumable DP (PR 8): an owned-state twin of [min_latency] for the
   churn engine.  A cell (e, u, mask) depends only on the pipeline and on
   the attributes of the processors in [mask] (their speeds, their Pin
   input links, and the links between them), so after a platform
   perturbation every cell whose mask avoids the touched processors is
   carried over bit-for-bit from the previous table; only cells naming a
   dirty processor are recomputed — by the {e same} loop nest in the same
   iteration order, so values and tie-breaking parents land exactly where
   a cold solve would put them (the churn-incremental fuzz oracle checks
   warm == cold on every event of random traces). *)
module Dp = struct
  type state = {
    st_n : int;
    st_m : int;
    st_wp : float array;
    st_delta : float array;
    st_spd : float array;
    st_bw_in : float array;
    st_bw_pp : float array;
    st_dp : float array;
    st_parent : int array;
  }

  type reuse = { cells_reused : int; cells_total : int }

  let bits_eq a b = Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)

  (* The clean set: current processors whose every cost input matches the
     previous state's counterpart.  [prev_of.(u)] is the previous index of
     current processor [u], [-1] for a processor with no previous
     counterpart (a join).  The mapping must be strictly increasing on its
     defined entries — relative iteration order is what makes previous
     tie-breaking decisions identical to a cold solve's — otherwise
     everything is treated as dirty. *)
  let dirty_set ~prev ~prev_of ~n ~m ~wp ~delta ~spd ~bw_in ~bw_pp =
    let full = (1 lsl m) - 1 in
    let arrays_eq a b =
      Array.length a = Array.length b
      && (let ok = ref true in
          Array.iteri (fun i x -> if not (bits_eq x b.(i)) then ok := false) a;
          !ok)
    in
    if
      prev.st_n <> n
      || Array.length prev_of <> m
      || not (arrays_eq prev.st_wp wp)
      || not (arrays_eq prev.st_delta delta)
    then full
    else begin
      let monotone = ref true and last = ref (-1) in
      Array.iter
        (fun p ->
          if p >= 0 then begin
            if p <= !last || p >= prev.st_m then monotone := false;
            last := p
          end)
        prev_of;
      if not !monotone then full
      else begin
        let dirty = ref 0 in
        for u = 0 to m - 1 do
          let p = prev_of.(u) in
          let clean_base =
            p >= 0
            && bits_eq spd.(u) prev.st_spd.(p)
            && bits_eq bw_in.(u) prev.st_bw_in.(p)
          in
          if not clean_base then dirty := !dirty lor (1 lsl u)
        done;
        let base_dirty = !dirty in
        (* A changed link dirties both endpoints: masks containing either
           are recomputed, masks containing neither never price it. *)
        for u = 0 to m - 1 do
          if base_dirty land (1 lsl u) = 0 then
            for v = u + 1 to m - 1 do
              if base_dirty land (1 lsl v) = 0 then begin
                let pu = prev_of.(u) and pv = prev_of.(v) in
                if
                  not
                    (bits_eq
                       bw_pp.((u * m) + v)
                       prev.st_bw_pp.((pu * prev.st_m) + pv))
                then dirty := !dirty lor (1 lsl u) lor (1 lsl v)
              end
            done
        done;
        !dirty
      end
    end

  let solve ?warm instance =
    let { Instance.pipeline; platform } = instance in
    let n = Pipeline.length pipeline and m = Platform.size platform in
    if m > max_procs then
      invalid_arg "Interval_exact.Dp.solve: too many processors (cap 14)";
    let masks = 1 lsl m in
    let wp = Pipeline.work_prefixes pipeline in
    let delta = Array.init (n + 1) (Pipeline.delta pipeline) in
    let spd = Array.init m (Platform.speed platform) in
    let bw_in =
      Array.init m (fun u ->
          Platform.bandwidth platform Platform.Pin (Platform.Proc u))
    in
    let bw_out =
      Array.init m (fun u ->
          Platform.bandwidth platform (Platform.Proc u) Platform.Pout)
    in
    let bw_pp = Array.make (m * m) 0.0 in
    for u = 0 to m - 1 do
      for v = 0 to m - 1 do
        if u <> v then
          bw_pp.((u * m) + v) <-
            Platform.bandwidth platform (Platform.Proc u) (Platform.Proc v)
      done
    done;
    let dirty_mask =
      match warm with
      | None -> masks - 1
      | Some (prev, prev_of) ->
          dirty_set ~prev ~prev_of ~n ~m ~wp ~delta ~spd ~bw_in ~bw_pp
    in
    let cells = (n + 1) * m * masks in
    let dp = Array.make cells Float.infinity in
    let parent = Array.make cells (-1) in
    (* Carry over every clean cell from the previous table. *)
    let reused = ref 0 in
    (match warm with
    | None -> ()
    | Some (prev, prev_of) ->
        let clean_set = (masks - 1) land lnot dirty_mask in
        if clean_set <> 0 || dirty_mask <> masks - 1 then begin
          let cur_of_prev = Array.make prev.st_m (-1) in
          Array.iteri
            (fun u p -> if p >= 0 then cur_of_prev.(p) <- u)
            prev_of;
          let prev_masks = 1 lsl prev.st_m in
          let sub = ref clean_set in
          let continue_ = ref true in
          while !continue_ do
            let cmask = !sub in
            if cmask <> 0 then begin
              (* Translate the mask into the previous index space. *)
              let pmask = ref 0 in
              for u = 0 to m - 1 do
                if cmask land (1 lsl u) <> 0 then
                  pmask := !pmask lor (1 lsl prev_of.(u))
              done;
              let pmask = !pmask in
              for u = 0 to m - 1 do
                if cmask land (1 lsl u) <> 0 then begin
                  let pu = prev_of.(u) in
                  for e = 1 to n do
                    let cell = (((e * m) + u) * masks) + cmask in
                    let pcell = (((e * prev.st_m) + pu) * prev_masks) + pmask in
                    dp.(cell) <- prev.st_dp.(pcell);
                    (match prev.st_parent.(pcell) with
                    | -1 -> ()
                    | code ->
                        let pe = code / prev.st_m and pv = code mod prev.st_m in
                        parent.(cell) <- (pe * m) + cur_of_prev.(pv));
                    incr reused
                  done
                end
              done
            end;
            if cmask = 0 then continue_ := false
            else sub := (cmask - 1) land clean_set
          done
        end);
    (* Base rows for dirty processors (clean ones were carried over). *)
    for v = 0 to m - 1 do
      if dirty_mask land (1 lsl v) <> 0 then begin
        let input = delta.(0) /. bw_in.(v) in
        let sv = spd.(v) in
        let cell = 1 lsl v in
        for e = 1 to n do
          dp.((((e * m) + v) * masks) + cell) <- input +. ((wp.(e) -. wp.(0)) /. sv)
        done
      end
    done;
    (* The cold loop nest, skipping relaxations into clean targets: a
       clean target already holds its final (previous == cold) value, and
       every dirty target receives exactly the cold sequence of candidate
       updates because sources at stage e are final when the outer loop
       reaches e. *)
    for e = 1 to n - 1 do
      let delta_e = delta.(e) in
      let wp_e = wp.(e) in
      for u = 0 to m - 1 do
        let row = ((e * m) + u) * masks in
        let bw_row = u * m in
        for mask = 0 to masks - 1 do
          let base = dp.(row + mask) in
          if Float.is_finite base then
            for v = 0 to m - 1 do
              if
                mask land (1 lsl v) = 0
                && (mask lor (1 lsl v)) land dirty_mask <> 0
              then begin
                let comm = delta_e /. bw_pp.(bw_row + v) in
                let nmask = mask lor (1 lsl v) in
                let sv = spd.(v) in
                let base_comm = base +. comm in
                let col = (v * masks) + nmask in
                for e' = e + 1 to n do
                  let cand = base_comm +. ((wp.(e') -. wp_e) /. sv) in
                  let cell = (e' * m * masks) + col in
                  if cand < dp.(cell) then begin
                    dp.(cell) <- cand;
                    parent.(cell) <- (e * m) + u
                  end
                done
              end
            done
        done
      done
    done;
    let best = ref Float.infinity and best_u = ref (-1) and best_mask = ref 0 in
    for u = 0 to m - 1 do
      let out = delta.(n) /. bw_out.(u) in
      let row = ((n * m) + u) * masks in
      for mask = 0 to masks - 1 do
        let total = dp.(row + mask) +. out in
        if total < !best then begin
          best := total;
          best_u := u;
          best_mask := mask
        end
      done
    done;
    let state =
      {
        st_n = n;
        st_m = m;
        st_wp = wp;
        st_delta = delta;
        st_spd = spd;
        st_bw_in = bw_in;
        st_bw_pp = bw_pp;
        st_dp = dp;
        st_parent = parent;
      }
    in
    let reuse = { cells_reused = !reused; cells_total = n * m * (masks / 2) } in
    if not (Float.is_finite !best) then (None, state, reuse)
    else begin
      let rec rebuild e u mask acc =
        match parent.((((e * m) + u) * masks) + mask) with
        | -1 -> { Mapping.first = 1; last = e; procs = [ u ] } :: acc
        | code ->
            let pe = code / m and pu = code mod m in
            rebuild pe pu
              (mask land lnot (1 lsl u))
              ({ Mapping.first = pe + 1; last = e; procs = [ u ] } :: acc)
      in
      let intervals = rebuild n !best_u !best_mask [] in
      (Some (!best, Mapping.make ~n ~m intervals), state, reuse)
    end

  (* Read-only views for certificate emission (lib/core/certify.ml): the
     checker in lib/cert never sees this module, only the numbers. *)
  let dims state = (state.st_n, state.st_m)

  let fold_finite_cells state ~init ~f =
    let n = state.st_n and m = state.st_m in
    let masks = 1 lsl m in
    let acc = ref init in
    for e = 1 to n do
      for u = 0 to m - 1 do
        let row = ((e * m) + u) * masks in
        for mask = 1 to masks - 1 do
          let value = state.st_dp.(row + mask) in
          if Float.is_finite value then acc := f !acc ~e ~u ~mask value
        done
      done
    done;
    !acc
end

let interval_vs_general_gap instance =
  match min_latency instance with
  | None -> Float.nan
  | Some (interval_opt, _) ->
      interval_opt /. General_mapping.optimal_latency instance
