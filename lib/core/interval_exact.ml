open Relpipe_model
module Obs = Relpipe_obs.Obs

let max_procs = 14

let min_latency instance =
  let { Instance.pipeline; platform } = instance in
  let n = Pipeline.length pipeline and m = Platform.size platform in
  if m > max_procs then
    invalid_arg "Interval_exact.min_latency: too many processors (cap 14)";
  let masks = 1 lsl m in
  let obs = Obs.ambient () in
  Obs.incr obs "core.interval_dp.runs";
  Obs.add obs "core.interval_dp.cells" ((n + 1) * m * masks);
  (* Successful relaxations, counted locally and flushed once at the end
     so the hot loop never touches an atomic. *)
  let updates = ref 0 in
  (* dp.(e).(u).(mask): cheapest cost of stages 1..e split into intervals
     with distinct processors (set = mask), last interval on u; includes
     the input communication and all computations/communications up to
     stage e, excludes the final output. *)
  let dp =
    Array.init (n + 1) (fun _ -> Array.make_matrix m masks Float.infinity)
  in
  let parent = Array.init (n + 1) (fun _ -> Array.make_matrix m masks (-1)) in
  for v = 0 to m - 1 do
    let input =
      Pipeline.delta pipeline 0
      /. Platform.bandwidth platform Platform.Pin (Platform.Proc v)
    in
    for e = 1 to n do
      dp.(e).(v).(1 lsl v) <-
        input +. (Pipeline.work_sum pipeline ~first:1 ~last:e /. Platform.speed platform v)
    done
  done;
  for e = 1 to n - 1 do
    for u = 0 to m - 1 do
      let row = dp.(e).(u) in
      for mask = 0 to masks - 1 do
        let base = row.(mask) in
        if Float.is_finite base then begin
          let hop v =
            Pipeline.delta pipeline e
            /. Platform.bandwidth platform (Platform.Proc u) (Platform.Proc v)
          in
          for v = 0 to m - 1 do
            if mask land (1 lsl v) = 0 then begin
              let comm = hop v in
              let nmask = mask lor (1 lsl v) in
              for e' = e + 1 to n do
                let cand =
                  base +. comm
                  +. Pipeline.work_sum pipeline ~first:(e + 1) ~last:e'
                     /. Platform.speed platform v
                in
                if cand < dp.(e').(v).(nmask) then begin
                  dp.(e').(v).(nmask) <- cand;
                  parent.(e').(v).(nmask) <- (e * m) + u;
                  incr updates
                end
              done
            end
          done
        end
      done
    done
  done;
  (* Close against Pout. *)
  let best = ref Float.infinity and best_u = ref (-1) and best_mask = ref 0 in
  for u = 0 to m - 1 do
    let out =
      Pipeline.delta pipeline n
      /. Platform.bandwidth platform (Platform.Proc u) Platform.Pout
    in
    for mask = 0 to masks - 1 do
      let total = dp.(n).(u).(mask) +. out in
      if total < !best then begin
        best := total;
        best_u := u;
        best_mask := mask
      end
    done
  done;
  Obs.add obs "core.interval_dp.states" !updates;
  if not (Float.is_finite !best) then None
  else begin
    (* Reconstruct the interval chain. *)
    let rec rebuild e u mask acc =
      match parent.(e).(u).(mask) with
      | -1 -> { Mapping.first = 1; last = e; procs = [ u ] } :: acc
      | code ->
          let pe = code / m and pu = code mod m in
          rebuild pe pu
            (mask land lnot (1 lsl u))
            ({ Mapping.first = pe + 1; last = e; procs = [ u ] } :: acc)
    in
    let intervals = rebuild n !best_u !best_mask [] in
    Some (!best, Mapping.make ~n ~m intervals)
  end

let interval_vs_general_gap instance =
  match min_latency instance with
  | None -> Float.nan
  | Some (interval_opt, _) ->
      interval_opt /. General_mapping.optimal_latency instance
