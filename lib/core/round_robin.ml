open Relpipe_model
module K = Relpipe_util.Kahan

type interval_spec = { first : int; last : int; groups : int list list }

type t = interval_spec list

let make ~n ~m specs =
  if n <= 0 then invalid_arg "Round_robin.make: pipeline length must be positive";
  if specs = [] then invalid_arg "Round_robin.make: no intervals";
  let seen = Hashtbl.create 16 in
  let rec check expected = function
    | [] ->
        if expected <> n + 1 then
          invalid_arg "Round_robin.make: intervals do not cover the pipeline"
    | s :: tl ->
        if s.first <> expected || s.last < s.first || s.last > n then
          invalid_arg "Round_robin.make: bad interval bounds";
        if s.groups = [] then invalid_arg "Round_robin.make: interval with no group";
        List.iter
          (fun g ->
            if g = [] then invalid_arg "Round_robin.make: empty group";
            List.iter
              (fun u ->
                if u < 0 || u >= m then
                  invalid_arg "Round_robin.make: processor out of range";
                if Hashtbl.mem seen u then
                  invalid_arg "Round_robin.make: processor used twice";
                Hashtbl.add seen u ())
              g)
          s.groups;
        check (s.last + 1) tl
  in
  check 1 specs;
  List.map
    (fun s -> { s with groups = List.map (List.sort Int.compare) s.groups })
    specs

let of_mapping mapping =
  List.map
    (fun iv ->
      { first = iv.Mapping.first; last = iv.Mapping.last; groups = [ iv.Mapping.procs ] })
    (Mapping.intervals mapping)

let partition_groups mapping ~q =
  if q < 1 then invalid_arg "Round_robin.partition_groups: q must be >= 1";
  let ivs = Mapping.intervals mapping in
  if List.exists (fun iv -> List.length iv.Mapping.procs < q) ivs then None
  else
    Some
      (List.map
         (fun iv ->
           let buckets = Array.make q [] in
           List.iteri
             (fun i u -> buckets.(i mod q) <- u :: buckets.(i mod q))
             iv.Mapping.procs;
           {
             first = iv.Mapping.first;
             last = iv.Mapping.last;
             groups = Array.to_list (Array.map (List.sort Int.compare) buckets);
           })
         ivs)

let intervals t = t

let rec gcd a b = if b = 0 then a else gcd b (a mod b)
let lcm a b = a / gcd a b * b

let cycle_length t =
  List.fold_left (fun acc spec -> lcm acc (List.length spec.groups)) 1 t

let mapping_for_dataset ~m t ~dataset =
  if dataset < 0 then invalid_arg "Round_robin.mapping_for_dataset: negative index";
  let n = List.fold_left (fun _ spec -> spec.last) 0 t in
  Mapping.make ~n ~m
    (List.map
       (fun spec ->
         let q = List.length spec.groups in
         {
           Mapping.first = spec.first;
           last = spec.last;
           procs = List.nth spec.groups (dataset mod q);
         })
       t)

let latency instance t =
  let { Instance.pipeline; platform } = instance in
  let specs = Array.of_list t in
  let p = Array.length specs in
  let acc = K.create () in
  (* Input: worst group of the first interval. *)
  let input_cost =
    List.fold_left
      (fun worst g ->
        Float.max worst
          (K.sum_map
             (fun u ->
               Pipeline.delta pipeline 0
               /. Platform.bandwidth platform Platform.Pin (Platform.Proc u))
             g))
      0.0 specs.(0).groups
  in
  K.add acc input_cost;
  for j = 0 to p - 1 do
    let spec = specs.(j) in
    let work = Pipeline.work_sum pipeline ~first:spec.first ~last:spec.last in
    let out_size = Pipeline.delta pipeline spec.last in
    let next_groups =
      if j = p - 1 then [ [ -1 ] ] (* sentinel: Pout *)
      else specs.(j + 1).groups
    in
    let target_endpoints group =
      if group = [ -1 ] then [ Platform.Pout ]
      else List.map (fun v -> Platform.Proc v) group
    in
    (* Worst over this interval's group, its forwarding replica, and the
       next interval's group. *)
    let term =
      List.fold_left
        (fun worst g ->
          List.fold_left
            (fun worst u ->
              let compute = work /. Platform.speed platform u in
              List.fold_left
                (fun worst g' ->
                  let comm =
                    K.sum_map
                      (fun v ->
                        out_size /. Platform.bandwidth platform (Platform.Proc u) v)
                      (target_endpoints g')
                  in
                  Float.max worst (compute +. comm))
                worst next_groups)
            worst g)
        0.0 spec.groups
    in
    K.add acc term
  done;
  K.sum acc

let period instance t =
  let { Instance.pipeline; platform } = instance in
  let specs = Array.of_list t in
  let p = Array.length specs in
  let n = Pipeline.length pipeline in
  let worst = ref 0.0 in
  let consider x = if x > !worst then worst := x in
  (* Pin: per cycle of q_1 data sets it serves every group once. *)
  let q1 = float_of_int (List.length specs.(0).groups) in
  let pin_total =
    K.sum_map
      (fun g ->
        K.sum_map
          (fun u ->
            Pipeline.delta pipeline 0
            /. Platform.bandwidth platform Platform.Pin (Platform.Proc u))
          g)
      specs.(0).groups
  in
  consider (pin_total /. q1);
  for j = 0 to p - 1 do
    let spec = specs.(j) in
    let qj = float_of_int (List.length spec.groups) in
    let work = Pipeline.work_sum pipeline ~first:spec.first ~last:spec.last in
    let in_size = Pipeline.delta pipeline (spec.first - 1) in
    let out_size = Pipeline.delta pipeline spec.last in
    let senders =
      if j = 0 then [ Platform.Pin ]
      else
        List.concat_map
          (fun g -> List.map (fun u -> Platform.Proc u) g)
          specs.(j - 1).groups
    in
    let out_targets =
      if j = p - 1 then [ [ Platform.Pout ] ]
      else
        List.map
          (fun g -> List.map (fun v -> Platform.Proc v) g)
          specs.(j + 1).groups
    in
    List.iter
      (fun g ->
        List.iter
          (fun u ->
            let incoming =
              List.fold_left
                (fun acc s ->
                  Float.max acc
                    (in_size /. Platform.bandwidth platform s (Platform.Proc u)))
                0.0 senders
            in
            let compute = work /. Platform.speed platform u in
            let outgoing =
              List.fold_left
                (fun acc targets ->
                  Float.max acc
                    (K.sum_map
                       (fun v ->
                         out_size
                         /. Platform.bandwidth platform (Platform.Proc u) v)
                       targets))
                0.0 out_targets
            in
            consider ((incoming +. compute +. outgoing) /. qj))
          g)
      spec.groups
  done;
  (* Pout receives every data set. *)
  let last = specs.(p - 1) in
  List.iter
    (List.iter (fun u ->
         consider
           (Pipeline.delta pipeline n
           /. Platform.bandwidth platform (Platform.Proc u) Platform.Pout)))
    last.groups;
  !worst

let failure instance t =
  let platform = instance.Instance.platform in
  let log_surv =
    List.fold_left
      (fun acc spec ->
        List.fold_left
          (fun acc g ->
            let pi = Failure.interval_failure platform g in
            acc +. Float.log1p (-.pi))
          acc spec.groups)
      0.0 t
  in
  -.Float.expm1 log_surv

let pp ppf t =
  let pp_group ppf g =
    Format.fprintf ppf "{%a}"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
         (fun ppf u -> Format.fprintf ppf "P%d" u))
      g
  in
  let pp_spec ppf s =
    Format.fprintf ppf "[S%d..S%d]->%a" s.first s.last
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "|")
         pp_group)
      s.groups
  in
  Format.fprintf ppf "@[<h>%a@]"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " ") pp_spec)
    t
