open Relpipe_model
module Analysis = Relpipe_analysis.Analysis
module Diagnostic = Relpipe_analysis.Diagnostic

type method_ =
  | Auto
  | Exact_enum
  | Polynomial
  | Heuristic of Heuristics.name
  | Portfolio

type error =
  | Invalid_instance of Diagnostic.t list
  | Invalid_objective of string
  | Not_applicable of string
  | Too_large of string

let pp_error ppf = function
  | Invalid_instance ds ->
      Format.fprintf ppf "invalid instance:";
      List.iter (fun d -> Format.fprintf ppf "@ %s" (Diagnostic.to_string d)) ds
  | Invalid_objective msg -> Format.fprintf ppf "invalid objective: %s" msg
  | Not_applicable msg | Too_large msg -> Format.pp_print_string ppf msg

let error_to_string e = Format.asprintf "@[<h>%a@]" pp_error e

let check_instance instance =
  match Analysis.instance_errors instance with
  | [] -> Ok ()
  | ds -> Error (Invalid_instance ds)

let check_objective objective =
  let finite name x =
    if Float.is_nan x then
      Error (Invalid_objective (Printf.sprintf "%s threshold is NaN" name))
    else Ok ()
  in
  match objective with
  | Instance.Min_latency { max_failure } -> finite "failure-probability" max_failure
  | Instance.Min_failure { max_latency } -> finite "latency" max_latency

let polynomial instance objective =
  if Fully_homog.applicable instance then Fully_homog.solve instance objective
  else if Comm_homog.applicable instance then Comm_homog.solve instance objective
  else
    invalid_arg
      "Solver: no polynomial-optimal algorithm for this platform class \
       (NP-hard or open per the paper)"

let small_enough ~budget instance =
  let n = Pipeline.length instance.Instance.pipeline in
  let m = Platform.size instance.Instance.platform in
  (* n, m <= 6 keeps the enumeration in the tens of thousands; the exact
     count confirms it is within budget. *)
  n <= 6 && m <= 6 && Exact.count_mappings ~n ~m () <= budget

let auto ~exact_budget instance objective =
  if Fully_homog.applicable instance || Comm_homog.applicable instance then
    polynomial instance objective
  else if small_enough ~budget:exact_budget instance then
    Exact.solve ~budget:exact_budget instance objective
  else begin
    let portfolio = Heuristics.best_of instance objective in
    (* On Communication Homogeneous platforms the speed-contiguous solver
       is cheap and captures the structure of known optima (e.g. Fig. 5);
       fold it into the portfolio. *)
    if Contiguous.applicable instance then
      Solution.best objective portfolio (Contiguous.solve instance objective)
    else portfolio
  end

let dispatch ~method_ ~exact_budget instance objective =
  match method_ with
  | Auto -> auto ~exact_budget instance objective
  | Exact_enum -> Exact.solve instance objective
  | Polynomial -> polynomial instance objective
  | Heuristic name -> Heuristics.run name instance objective
  | Portfolio -> Heuristics.best_of instance objective

let run ?(method_ = Auto) ?(exact_budget = 200_000) instance objective =
  match check_instance instance with
  | Error _ as e -> e
  | Ok () -> (
      match check_objective objective with
      | Error _ as e -> e
      | Ok () -> (
          match dispatch ~method_ ~exact_budget instance objective with
          | s -> Ok s
          | exception Invalid_argument msg -> Error (Not_applicable msg)
          | exception Exact.Too_large msg -> Error (Too_large msg)))

let solve ?method_ ?exact_budget instance objective =
  match run ?method_ ?exact_budget instance objective with
  | Ok s -> s
  | Error (Too_large msg) -> raise (Exact.Too_large msg)
  | Error ((Invalid_instance _ | Invalid_objective _) as e) ->
      invalid_arg ("Solver: " ^ error_to_string e)
  | Error (Not_applicable msg) -> invalid_arg msg

let describe instance =
  let platform = instance.Instance.platform in
  let comm = Classify.comm_class platform in
  let fail = Classify.failure_class platform in
  let method_name =
    if Fully_homog.applicable instance then "Algorithms 1/2 (polynomial, optimal)"
    else if Comm_homog.applicable instance then
      "Algorithms 3/4 (polynomial, optimal)"
    else if small_enough ~budget:200_000 instance then
      "exhaustive enumeration (instance is small)"
    else "heuristic portfolio (NP-hard/open case)"
  in
  Format.asprintf "%a, %a -> %s" Classify.pp_comm_class comm
    Classify.pp_failure_class fail method_name
