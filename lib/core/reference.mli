(** Pre-optimization solver kernels, kept as differential twins.

    PR 5 rewrote the hot paths of {!Interval_exact}, {!General_mapping} and
    {!Bb} around reusable workspaces, prefix sums and memoized bounds.
    This module preserves the original implementations verbatim (minus obs
    instrumentation) so that

    - the [opt-vs-reference] fuzz oracle and [test/test_reference.ml] can
      assert [optimized == reference] bit-for-bit on randomized and
      adversarial instances, and
    - the bench harness can measure honest speedups against the code that
      actually shipped before.

    These functions are intentionally slow; never call them from solver
    paths.  They carry no obs counters, so running them does not perturb
    metrics snapshots. *)

open Relpipe_model

val interval_min_latency_reference : Instance.t -> (float * Mapping.t) option
(** Twin of {!Interval_exact.min_latency} (bitmask interval DP, §4.1).
    @raise Invalid_argument beyond {!Interval_exact.max_procs}. *)

val general_dp_reference : Instance.t -> float * Assignment.t
(** Twin of {!General_mapping.solve_dp} (Theorem 4 direct DP). *)

val bb_solve_with_stats_reference :
  Instance.t -> Instance.objective -> Solution.t option * Bb.stats
(** Twin of {!Bb.solve_with_stats}.  Node counts are an implementation
    detail (see EXPERIMENTS.md on E16); the solution and its evaluation are
    the pinned contract. *)

val bb_solve_reference : Instance.t -> Instance.objective -> Solution.t option
(** Twin of {!Bb.solve}. *)
