open Relpipe_model
module Rng = Relpipe_util.Rng

type name =
  | Single_greedy
  | Split_replicate
  | Local_search
  | Annealing
  | Iterated

let all_names =
  [ Single_greedy; Split_replicate; Local_search; Annealing; Iterated ]

let name_to_string = function
  | Single_greedy -> "single-greedy"
  | Split_replicate -> "split-replicate"
  | Local_search -> "local-search"
  | Annealing -> "annealing"
  | Iterated -> "iterated-ls"

let dims instance =
  (Pipeline.length instance.Instance.pipeline, Platform.size instance.Instance.platform)

let feasible objective (s : Solution.t) =
  Instance.feasible objective s.Solution.evaluation

let keep_best objective best s =
  if feasible objective s then Solution.best objective best (Some s) else best

(* ------------------------------------------------------------------ *)
(* Single-interval greedy                                              *)
(* ------------------------------------------------------------------ *)

let single_of instance procs =
  let n, m = dims instance in
  Solution.of_mapping instance (Mapping.single_interval ~n ~m procs)

let single_greedy instance objective =
  let platform = instance.Instance.platform in
  let by_reliability = Mono.most_reliable_procs platform in
  let by_speed = Mono.fastest_procs platform in
  let grow order =
    (* Greedily extend the replication set in the given preference order,
       keeping every prefix-extension that preserves feasibility; also
       remember the best feasible intermediate. *)
    let best = ref None in
    let rec go current = function
      | [] -> ()
      | u :: tl ->
          let candidate = single_of instance (u :: current) in
          if feasible objective candidate then begin
            best := keep_best objective !best candidate;
            go (u :: current) tl
          end
          else go current tl
    in
    go [] order;
    !best
  in
  (* Also consider plain prefixes of both orders (the optimal shape on
     homogeneous platforms). *)
  let prefixes order =
    let rec go acc current = function
      | [] -> acc
      | u :: tl ->
          let current = u :: current in
          let acc = keep_best objective acc (single_of instance current) in
          go acc current tl
    in
    go None [] order
  in
  List.fold_left
    (Solution.best objective)
    None
    [ grow by_reliability; grow by_speed; prefixes by_reliability; prefixes by_speed ]

(* ------------------------------------------------------------------ *)
(* Split and replicate                                                 *)
(* ------------------------------------------------------------------ *)

let balanced_composition pipeline p =
  (* Cut the pipeline into p intervals of roughly equal work. *)
  let n = Pipeline.length pipeline in
  let total = Pipeline.total_work pipeline in
  let target j = float_of_int j *. total /. float_of_int p in
  let cuts = ref [] in
  let made = ref 0 in
  let acc = ref 0.0 in
  for k = 1 to n - 1 do
    acc := !acc +. Pipeline.work pipeline k;
    (* Cut after stage k when we crossed the next target, keeping enough
       stages for the remaining intervals. *)
    if
      !made < p - 1
      && !acc >= target (!made + 1)
      && n - k >= p - 1 - !made
    then begin
      cuts := k :: !cuts;
      incr made
    end
  done;
  (* Force remaining cuts at the tail if work was too front-loaded. *)
  let rec force k =
    if !made < p - 1 then begin
      if not (List.mem k !cuts) then begin
        cuts := k :: !cuts;
        incr made
      end;
      force (k - 1)
    end
  in
  force (n - 1);
  let bounds = List.sort Int.compare !cuts in
  let rec build first = function
    | [] -> [ (first, n) ]
    | c :: tl -> (first, c) :: build (c + 1) tl
  in
  build 1 bounds

let split_replicate instance objective =
  let { Instance.pipeline; platform } = instance in
  let n, m = dims instance in
  let best = ref None in
  let try_p p =
    let intervals = Array.of_list (balanced_composition pipeline p) in
    if Array.length intervals <> p then ()
    else begin
      (* Seed: pair the largest-work interval with the fastest processor. *)
      let order_by_work =
        List.sort
          (fun i j ->
            Float.compare
              (Pipeline.work_sum pipeline ~first:(fst intervals.(j)) ~last:(snd intervals.(j)))
              (Pipeline.work_sum pipeline ~first:(fst intervals.(i)) ~last:(snd intervals.(i))))
          (List.init p Fun.id)
      in
      let fastest = Array.of_list (Mono.fastest_procs platform) in
      let sets = Array.make p [] in
      List.iteri (fun rank j -> sets.(j) <- [ fastest.(rank) ]) order_by_work;
      let used = Array.make m false in
      Array.iter (fun procs -> List.iter (fun u -> used.(u) <- true) procs) sets;
      let build () =
        Mapping.make ~n ~m
          (List.init p (fun j ->
               { Mapping.first = fst intervals.(j); last = snd intervals.(j);
                 procs = List.sort Int.compare sets.(j) }))
      in
      let current = ref (Solution.of_mapping instance (build ())) in
      best := keep_best objective !best !current;
      (* Greedy replica additions: pick the (processor, interval) pair that
         best improves the score until no addition helps. *)
      let score (s : Solution.t) =
        let e = s.Solution.evaluation in
        match objective with
        | Instance.Min_latency { max_failure } ->
            let viol = Float.max 0.0 (e.Instance.failure -. max_failure) in
            (viol, e.Instance.latency)
        | Instance.Min_failure { max_latency } ->
            let viol = Float.max 0.0 (e.Instance.latency -. max_latency) in
            (viol, e.Instance.failure)
      in
      let improved = ref true in
      while !improved do
        improved := false;
        let current_score = score !current in
        let best_move = ref None in
        for u = 0 to m - 1 do
          if not used.(u) then
            for j = 0 to p - 1 do
              sets.(j) <- u :: sets.(j);
              let cand = Solution.of_mapping instance (build ()) in
              let sc = score cand in
              if sc < current_score then begin
                match !best_move with
                | Some (bsc, _, _, _) when bsc <= sc -> ()
                | _ -> best_move := Some (sc, u, j, cand)
              end;
              sets.(j) <- List.tl sets.(j)
            done
        done;
        match !best_move with
        | Some (_, u, j, cand) ->
            sets.(j) <- u :: sets.(j);
            used.(u) <- true;
            current := cand;
            best := keep_best objective !best cand;
            improved := true
        | None -> ()
      done
    end
  in
  for p = 1 to min n m do
    try_p p
  done;
  !best

(* ------------------------------------------------------------------ *)
(* Local search and simulated annealing                                *)
(* ------------------------------------------------------------------ *)

(* Mutable search state: interval boundaries plus per-interval processor
   sets. *)
type state = { bounds : (int * int) array; sets : int list array }

let state_of_mapping mapping =
  let ivs = Array.of_list (Mapping.intervals mapping) in
  {
    bounds = Array.map (fun iv -> (iv.Mapping.first, iv.Mapping.last)) ivs;
    sets = Array.map (fun iv -> iv.Mapping.procs) ivs;
  }

let mapping_of_state ~n ~m st =
  Mapping.make ~n ~m
    (List.init (Array.length st.bounds) (fun j ->
         {
           Mapping.first = fst st.bounds.(j);
           last = snd st.bounds.(j);
           procs = List.sort Int.compare st.sets.(j);
         }))

let unused_procs ~m st =
  let used = Array.make m false in
  Array.iter (List.iter (fun u -> used.(u) <- true)) st.sets;
  List.filter (fun u -> not used.(u)) (List.init m Fun.id)

(* Each move returns a fresh state, or None when inapplicable. *)
let move_shift rng st =
  let p = Array.length st.bounds in
  if p < 2 then None
  else begin
    let j = Rng.int rng (p - 1) in
    let f1, l1 = st.bounds.(j) and f2, l2 = st.bounds.(j + 1) in
    let grow_left = Rng.bool rng in
    if grow_left && l2 > f2 then begin
      let bounds = Array.copy st.bounds in
      bounds.(j) <- (f1, l1 + 1);
      bounds.(j + 1) <- (f2 + 1, l2);
      Some { st with bounds }
    end
    else if (not grow_left) && l1 > f1 then begin
      let bounds = Array.copy st.bounds in
      bounds.(j) <- (f1, l1 - 1);
      bounds.(j + 1) <- (f2 - 1, l2);
      Some { st with bounds }
    end
    else None
  end

let move_split rng st =
  let p = Array.length st.bounds in
  let candidates =
    List.filter
      (fun j ->
        let f, l = st.bounds.(j) in
        l > f && List.length st.sets.(j) >= 2)
      (List.init p Fun.id)
  in
  if candidates = [] then None
  else begin
    let j = List.nth candidates (Rng.int rng (List.length candidates)) in
    let f, l = st.bounds.(j) in
    let cut = f + Rng.int rng (l - f) in
    let procs = Array.of_list st.sets.(j) in
    Rng.shuffle rng procs;
    let k = 1 + Rng.int rng (Array.length procs - 1) in
    let left = Array.to_list (Array.sub procs 0 k) in
    let right = Array.to_list (Array.sub procs k (Array.length procs - k)) in
    let bounds =
      Array.concat
        [ Array.sub st.bounds 0 j; [| (f, cut); (cut + 1, l) |];
          Array.sub st.bounds (j + 1) (p - j - 1) ]
    in
    let sets =
      Array.concat
        [ Array.sub st.sets 0 j; [| left; right |];
          Array.sub st.sets (j + 1) (p - j - 1) ]
    in
    Some { bounds; sets }
  end

let move_merge rng st =
  let p = Array.length st.bounds in
  if p < 2 then None
  else begin
    let j = Rng.int rng (p - 1) in
    let f1, _ = st.bounds.(j) and _, l2 = st.bounds.(j + 1) in
    let bounds =
      Array.concat
        [ Array.sub st.bounds 0 j; [| (f1, l2) |];
          Array.sub st.bounds (j + 2) (p - j - 2) ]
    in
    let sets =
      Array.concat
        [ Array.sub st.sets 0 j; [| st.sets.(j) @ st.sets.(j + 1) |];
          Array.sub st.sets (j + 2) (p - j - 2) ]
    in
    Some { bounds; sets }
  end

let move_add_proc rng ~m st =
  match unused_procs ~m st with
  | [] -> None
  | unused ->
      let u = List.nth unused (Rng.int rng (List.length unused)) in
      let j = Rng.int rng (Array.length st.bounds) in
      let sets = Array.copy st.sets in
      sets.(j) <- u :: sets.(j);
      Some { st with sets }

let move_drop_proc rng st =
  let candidates =
    List.filter
      (fun j -> List.length st.sets.(j) >= 2)
      (List.init (Array.length st.bounds) Fun.id)
  in
  if candidates = [] then None
  else begin
    let j = List.nth candidates (Rng.int rng (List.length candidates)) in
    let k = Rng.int rng (List.length st.sets.(j)) in
    let sets = Array.copy st.sets in
    sets.(j) <- List.filteri (fun i _ -> i <> k) st.sets.(j);
    Some { st with sets }
  end

let move_swap_proc rng ~m st =
  match unused_procs ~m st with
  | [] -> None
  | unused ->
      let u = List.nth unused (Rng.int rng (List.length unused)) in
      let j = Rng.int rng (Array.length st.bounds) in
      let procs = Array.of_list st.sets.(j) in
      let k = Rng.int rng (Array.length procs) in
      procs.(k) <- u;
      let sets = Array.copy st.sets in
      sets.(j) <- Array.to_list procs;
      Some { st with sets }

let random_move rng ~m st =
  let moves =
    [|
      move_shift rng;
      move_split rng;
      move_merge rng;
      move_add_proc rng ~m;
      move_drop_proc rng;
      move_swap_proc rng ~m;
    |]
  in
  let start = Rng.int rng (Array.length moves) in
  let rec try_from i attempts =
    if attempts = 0 then None
    else
      match moves.((start + i) mod Array.length moves) st with
      | Some st' -> Some st'
      | None -> try_from (i + 1) (attempts - 1)
  in
  try_from 0 (Array.length moves)

let energy objective ~latency_scale (e : Instance.evaluation) =
  match objective with
  | Instance.Min_latency { max_failure } ->
      (e.Instance.latency /. latency_scale)
      +. (10.0 *. Float.max 0.0 (e.Instance.failure -. max_failure))
  | Instance.Min_failure { max_latency } ->
      e.Instance.failure
      +. 10.0
         *. Float.max 0.0 ((e.Instance.latency -. max_latency) /. latency_scale)

let search ~accept ~iterations ~seed instance objective =
  let n, m = dims instance in
  let rng = Rng.create seed in
  let initial =
    Mapping.single_interval ~n ~m [ Mono.fastest_proc instance.Instance.platform ]
  in
  let latency_scale =
    Float.max 1e-9
      (Latency.of_mapping instance.Instance.pipeline instance.Instance.platform
         initial)
  in
  let energy_of e = energy objective ~latency_scale e in
  let current = ref (state_of_mapping initial) in
  let current_solution = ref (Solution.of_mapping instance initial) in
  let best = ref (keep_best objective None !current_solution) in
  for step = 0 to iterations - 1 do
    match random_move rng ~m !current with
    | None -> ()
    | Some st' ->
        let s' = Solution.of_mapping instance (mapping_of_state ~n ~m st') in
        let de =
          energy_of s'.Solution.evaluation
          -. energy_of !current_solution.Solution.evaluation
        in
        if accept rng ~step ~iterations de then begin
          current := st';
          current_solution := s'
        end;
        best := keep_best objective !best s'
  done;
  !best

let local_search ?(seed = 1) ?(iterations = 4000) instance objective =
  let accept _rng ~step:_ ~iterations:_ de = de < 0.0 in
  search ~accept ~iterations ~seed instance objective

let annealing ?(seed = 1) ?(iterations = 8000) instance objective =
  let t0 = 1.0 and t1 = 1e-4 in
  let accept rng ~step ~iterations de =
    if de < 0.0 then true
    else begin
      let frac = float_of_int step /. float_of_int (max 1 (iterations - 1)) in
      let temp = t0 *. ((t1 /. t0) ** frac) in
      Rng.float rng 1.0 < Float.exp (-.de /. temp)
    end
  in
  search ~accept ~iterations ~seed instance objective

let iterated ?(seed = 1) ?(rounds = 12) ?(descent = 600) instance objective =
  let n, m = dims instance in
  let rng = Rng.create seed in
  let initial =
    Mapping.single_interval ~n ~m [ Mono.fastest_proc instance.Instance.platform ]
  in
  let latency_scale =
    Float.max 1e-9
      (Latency.of_mapping instance.Instance.pipeline instance.Instance.platform
         initial)
  in
  let energy_of s = energy objective ~latency_scale s.Solution.evaluation in
  let best = ref (keep_best objective None (Solution.of_mapping instance initial)) in
  let current = ref (state_of_mapping initial) in
  let current_solution = ref (Solution.of_mapping instance initial) in
  let descend () =
    for _ = 1 to descent do
      match random_move rng ~m !current with
      | None -> ()
      | Some st' ->
          let s' = Solution.of_mapping instance (mapping_of_state ~n ~m st') in
          if energy_of s' < energy_of !current_solution then begin
            current := st';
            current_solution := s'
          end;
          best := keep_best objective !best s'
    done
  in
  let perturb () =
    for _ = 1 to 3 do
      match random_move rng ~m !current with
      | None -> ()
      | Some st' ->
          current := st';
          current_solution :=
            Solution.of_mapping instance (mapping_of_state ~n ~m st')
    done
  in
  descend ();
  for _ = 2 to rounds do
    perturb ();
    descend ()
  done;
  !best

let run ?(seed = 1) name instance objective =
  match name with
  | Single_greedy -> single_greedy instance objective
  | Split_replicate -> split_replicate instance objective
  | Local_search -> local_search ~seed instance objective
  | Annealing -> annealing ~seed instance objective
  | Iterated -> iterated ~seed instance objective

let best_of ?(seed = 1) instance objective =
  List.fold_left
    (fun acc name -> Solution.best objective acc (run ~seed name instance objective))
    None all_names
