open Relpipe_model

let applicable instance = Classify.links_homogeneous instance.Instance.platform

let dominates platform u v =
  let su = Platform.speed platform u and sv = Platform.speed platform v in
  let fu = Platform.failure platform u and fv = Platform.failure platform v in
  if su >= sv && fu <= fv then
    if su > sv || fu < fv then true else u < v (* total tie: index order *)
  else false

let undominated platform =
  let procs = Platform.procs platform in
  let keep u = not (List.exists (fun v -> v <> u && dominates platform v u) procs) in
  List.sort
    (fun a b -> Float.compare (Platform.speed platform b) (Platform.speed platform a))
    (List.filter keep procs)

let normalize instance mapping =
  if not (applicable instance) then
    invalid_arg "Dominance.normalize: links must be homogeneous";
  let platform = instance.Instance.platform in
  let m = Platform.size platform in
  let used = Array.make m false in
  List.iter (fun u -> used.(u) <- true) (Mapping.used_procs mapping);
  (* For each enrolled processor, look for an unused strict dominator;
     apply the best (fastest, then most reliable) one. *)
  let swap_target u =
    let candidates =
      List.filter
        (fun v -> (not used.(v)) && dominates platform v u)
        (Platform.procs platform)
    in
    let better a b =
      let c = Float.compare (Platform.speed platform b) (Platform.speed platform a) in
      if c <> 0 then c < 0
      else Platform.failure platform a < Platform.failure platform b
    in
    match candidates with
    | [] -> None
    | first :: rest ->
        Some (List.fold_left (fun acc v -> if better v acc then v else acc) first rest)
  in
  let intervals =
    List.map
      (fun iv ->
        let procs =
          List.map
            (fun u ->
              match swap_target u with
              | Some v ->
                  used.(u) <- false;
                  used.(v) <- true;
                  v
              | None -> u)
            iv.Mapping.procs
        in
        { iv with Mapping.procs })
      (Mapping.intervals mapping)
  in
  Mapping.make ~n:(Pipeline.length instance.Instance.pipeline) ~m intervals
