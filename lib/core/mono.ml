open Relpipe_model

let fastest_proc platform =
  let best = ref 0 in
  for u = 1 to Platform.size platform - 1 do
    if Platform.speed platform u > Platform.speed platform !best then best := u
  done;
  !best

let sorted_procs platform key =
  List.sort
    (fun u v ->
      let c = Float.compare (key u) (key v) in
      if c <> 0 then c else Int.compare u v)
    (Platform.procs platform)

let most_reliable_procs platform =
  sorted_procs platform (fun u -> Platform.failure platform u)

let fastest_procs platform = sorted_procs platform (fun u -> -.Platform.speed platform u)

let min_failure instance =
  let { Instance.pipeline; platform } = instance in
  let n = Pipeline.length pipeline and m = Platform.size platform in
  Solution.of_mapping instance
    (Mapping.single_interval ~n ~m (Platform.procs platform))

let min_latency_comm_homog instance =
  let { Instance.pipeline; platform } = instance in
  if not (Classify.links_homogeneous platform) then
    invalid_arg "Mono.min_latency_comm_homog: links are not homogeneous";
  let n = Pipeline.length pipeline and m = Platform.size platform in
  Solution.of_mapping instance
    (Mapping.single_interval ~n ~m [ fastest_proc platform ])
