open Relpipe_model
module B = Relpipe_util.Bitset
module C = Relpipe_util.Combin
module Obs = Relpipe_obs.Obs

exception Too_large of string

let iter_mappings ?max_intervals ~n ~m f =
  if m > B.max_width then invalid_arg "Exact.iter_mappings: too many processors";
  let cap = Option.value max_intervals ~default:(min n m) in
  let pool = B.full m in
  Seq.iter
    (fun intervals ->
      let p = List.length intervals in
      if p <= cap && p <= m then
        Seq.iter
          (fun subsets ->
            let ivs =
              List.map2
                (fun (first, last) procs ->
                  { Mapping.first; last; procs = B.elements procs })
                intervals subsets
            in
            f (Mapping.make ~n ~m ivs))
          (C.disjoint_assignments pool p))
    (C.compositions n)

let count_mappings ?max_intervals ~n ~m () =
  let count = ref 0 in
  iter_mappings ?max_intervals ~n ~m (fun _ -> incr count);
  !count

let solve ?max_intervals ?(budget = 5_000_000) instance objective =
  let { Instance.pipeline; platform } = instance in
  let n = Pipeline.length pipeline and m = Platform.size platform in
  let best = ref None in
  let seen = ref 0 in
  iter_mappings ?max_intervals ~n ~m (fun mapping ->
      incr seen;
      if !seen > budget then
        raise
          (Too_large
             (Printf.sprintf "Exact.solve: more than %d mappings (n=%d m=%d)"
                budget n m));
      let s = Solution.of_mapping instance mapping in
      if Instance.feasible objective s.Solution.evaluation then
        best := Solution.best objective !best (Some s));
  let obs = Obs.ambient () in
  Obs.incr obs "core.exact.solves";
  Obs.add obs "core.exact.mappings" !seen;
  !best

let solve_single_interval instance objective =
  let { Instance.pipeline; platform } = instance in
  let n = Pipeline.length pipeline and m = Platform.size platform in
  if m > B.max_width then
    invalid_arg "Exact.solve_single_interval: too many processors";
  let best = ref None in
  Seq.iter
    (fun subset ->
      let mapping = Mapping.single_interval ~n ~m (B.elements subset) in
      let s = Solution.of_mapping instance mapping in
      if Instance.feasible objective s.Solution.evaluation then
        best := Solution.best objective !best (Some s))
    (B.nonempty_subsets (B.full m));
  !best

let min_latency_unreplicated instance =
  let { Instance.pipeline; platform } = instance in
  let n = Pipeline.length pipeline and m = Platform.size platform in
  let best = ref None in
  Seq.iter
    (fun intervals ->
      let p = List.length intervals in
      if p <= m then
        Seq.iter
          (fun procs ->
            let ivs =
              List.map2
                (fun (first, last) u -> { Mapping.first; last; procs = [ u ] })
                intervals procs
            in
            let mapping = Mapping.make ~n ~m ivs in
            let latency = Latency.of_mapping pipeline platform mapping in
            match !best with
            | Some (bl, _) when bl <= latency -> ()
            | _ -> best := Some (latency, mapping))
          (C.injections p (Platform.procs platform)))
    (C.compositions n);
  !best

let min_latency instance =
  let { Instance.pipeline; platform } = instance in
  let n = Pipeline.length pipeline and m = Platform.size platform in
  let best = ref Float.infinity in
  iter_mappings ~n ~m (fun mapping ->
      let latency = Latency.of_mapping pipeline platform mapping in
      if latency < !best then best := latency);
  !best
