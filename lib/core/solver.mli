(** Unified solving facade.

    Dispatches a bi-criteria problem to the right algorithm for the
    platform class, mirroring the paper's complexity landscape:

    - Fully Homogeneous (speeds + links): Algorithms 1/2 — polynomial,
      optimal (including heterogeneous failures, per the paper's remark);
    - Communication Homogeneous + Failure Homogeneous: Algorithms 3/4 —
      polynomial, optimal;
    - everything else (Comm. Homogeneous + Failure Heterogeneous — open;
      Fully Heterogeneous — NP-hard): exhaustive search when the instance
      is small enough, otherwise the heuristic portfolio.

    Every entry point first runs the [Relpipe_analysis] instance pass at
    [Error] level; a malformed instance yields a typed {!error} (from
    {!run}) instead of an exception escaping mid-search. *)

open Relpipe_model

type method_ =
  | Auto  (** the dispatch described above *)
  | Exact_enum  (** {!Exact.solve} regardless of size (may raise) *)
  | Polynomial  (** Algorithms 1-4; [Not_applicable] otherwise *)
  | Heuristic of Heuristics.name
  | Portfolio  (** {!Heuristics.best_of} *)

type error =
  | Invalid_instance of Relpipe_analysis.Diagnostic.t list
      (** the [Error]-level lint findings, worst first *)
  | Invalid_objective of string  (** e.g. a NaN threshold *)
  | Not_applicable of string  (** [Polynomial] on an intractable class *)
  | Too_large of string  (** [Exact_enum] beyond its budget *)

val pp_error : Format.formatter -> error -> unit

val error_to_string : error -> string

val check_instance : Instance.t -> (unit, error) result
(** The guard by itself: [Error (Invalid_instance _)] when the instance
    pass reports [Error]-level findings. *)

val run :
  ?method_:method_ ->
  ?exact_budget:int ->
  Instance.t ->
  Instance.objective ->
  (Solution.t option, error) result
(** Solve with a typed outcome.  [Ok None] means no feasible mapping was
    found (a definitive answer for the optimal methods, best effort for
    heuristics).  [exact_budget] bounds the mapping enumeration Auto may
    attempt (default [200_000]). *)

val solve :
  ?method_:method_ ->
  ?exact_budget:int ->
  Instance.t ->
  Instance.objective ->
  Solution.t option
(** Legacy exception-based wrapper over {!run}: raises [Invalid_argument]
    on invalid instances/objectives and inapplicable methods, and
    {!Exact.Too_large} when the enumeration budget is exceeded. *)

val describe : Instance.t -> string
(** Human-readable platform classification and the method Auto would
    pick. *)
