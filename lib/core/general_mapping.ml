open Relpipe_model
module G = Relpipe_graph
module Obs = Relpipe_obs.Obs
module W = Relpipe_util.Workspace

type algo = Dijkstra | Bellman_ford | Dag_sweep

let graph instance =
  let { Instance.pipeline; platform } = instance in
  let n = Pipeline.length pipeline and m = Platform.size platform in
  let vertex i u = 1 + ((i - 1) * m) + u in
  let source = 0 and sink = (n * m) + 1 in
  let g = G.Graph.create ((n * m) + 2) in
  (* Source edges: input communication to stage 1's host. *)
  for u = 0 to m - 1 do
    G.Graph.add_edge g source (vertex 1 u)
      (Pipeline.delta pipeline 0
      /. Platform.bandwidth platform Platform.Pin (Platform.Proc u))
  done;
  (* Inner edges: compute stage i on u, then ship delta_i to v if u <> v. *)
  for i = 1 to n - 1 do
    for u = 0 to m - 1 do
      let compute = Pipeline.work pipeline i /. Platform.speed platform u in
      for v = 0 to m - 1 do
        let comm =
          if u = v then 0.0
          else
            Pipeline.delta pipeline i
            /. Platform.bandwidth platform (Platform.Proc u) (Platform.Proc v)
        in
        G.Graph.add_edge g (vertex i u) (vertex (i + 1) v) (compute +. comm)
      done
    done
  done;
  (* Sink edges: compute stage n on u, then return the result to Pout. *)
  for u = 0 to m - 1 do
    let compute = Pipeline.work pipeline n /. Platform.speed platform u in
    let comm =
      Pipeline.delta pipeline n
      /. Platform.bandwidth platform (Platform.Proc u) Platform.Pout
    in
    G.Graph.add_edge g (vertex n u) sink (compute +. comm)
  done;
  (g, source, sink)

let assignment_of_path ~m path =
  (* Drop source and sink; map each inner vertex back to its processor. *)
  let rec middle = function
    | [] | [ _ ] -> []
    | [ v; _sink ] -> [ v ]
    | v :: tl -> v :: middle tl
  in
  let inner_vertices = match path with [] -> [] | _source :: tl -> middle tl in
  let procs = List.map (fun v -> (v - 1) mod m) inner_vertices in
  Assignment.of_list ~m procs

let solve ?(algo = Dijkstra) instance =
  let m = Platform.size instance.Instance.platform in
  let g, source, sink = graph instance in
  let obs = Obs.ambient () in
  Obs.incr obs "core.general_graph.runs";
  (* n*m inner vertices: m source edges, m sink edges, (n-1)*m*m inner. *)
  let n = Pipeline.length instance.Instance.pipeline in
  Obs.add obs "core.general_graph.edges" ((2 * m) + ((n - 1) * m * m));
  let result =
    match algo with
    | Dijkstra -> G.Dijkstra.shortest_path g ~src:source ~dst:sink
    | Bellman_ford -> (
        match G.Bellman_ford.shortest_path g ~src:source ~dst:sink with
        | Ok r -> r
        | Error `Negative_cycle -> assert false (* weights are non-negative *))
    | Dag_sweep -> G.Dag.shortest_path g ~src:source ~dst:sink
  in
  match result with
  | Some (dist, path) -> (dist, assignment_of_path ~m path)
  | None -> assert false (* the layered graph is connected *)

(* Reusable domain-local scratch for [solve_dp]: platform snapshot, the two
   rolling DP rows and the parent table.  Layout of [env]: stage works (n+1,
   1-indexed) | deltas (n+1) | speeds (m) | Pin->u (m) | u->Pout (m)
   | u->v (m*m, diagonal unused) | best row (m) | next row (m). *)
let ws_env = W.floats ()
let ws_parent = W.ints ()

let solve_dp instance =
  let { Instance.pipeline; platform } = instance in
  let n = Pipeline.length pipeline and m = Platform.size platform in
  let obs = Obs.ambient () in
  Obs.incr obs "core.general_dp.runs";
  let relaxations = ref 0 in
  let off_work = 0 in
  let off_delta = n + 1 in
  let off_spd = off_delta + n + 1 in
  let off_bw_in = off_spd + m in
  let off_bw_out = off_bw_in + m in
  let off_bw_pp = off_bw_out + m in
  let off_best = off_bw_pp + (m * m) in
  let off_next = off_best + m in
  let env = W.get_floats ws_env ~len:(off_next + m) ~fill:0.0 in
  for i = 1 to n do
    env.(off_work + i) <- Pipeline.work pipeline i
  done;
  for k = 0 to n do
    env.(off_delta + k) <- Pipeline.delta pipeline k
  done;
  for u = 0 to m - 1 do
    env.(off_spd + u) <- Platform.speed platform u;
    env.(off_bw_in + u) <-
      Platform.bandwidth platform Platform.Pin (Platform.Proc u);
    env.(off_bw_out + u) <-
      Platform.bandwidth platform (Platform.Proc u) Platform.Pout;
    for v = 0 to m - 1 do
      if u <> v then
        env.(off_bw_pp + (u * m) + v) <-
          Platform.bandwidth platform (Platform.Proc u) (Platform.Proc v)
    done
  done;
  let parent = W.get_ints ws_parent ~len:((n + 1) * m) ~fill:(-1) in
  (* best.(u): cheapest cost of a partial mapping of stages 1..i with stage
     i on processor u, including stage i's computation. *)
  for u = 0 to m - 1 do
    env.(off_best + u) <-
      (env.(off_delta) /. env.(off_bw_in + u))
      +. (env.(off_work + 1) /. env.(off_spd + u))
  done;
  for i = 2 to n do
    Array.fill env off_next m Float.infinity;
    let delta_prev = env.(off_delta + i - 1) in
    let work_i = env.(off_work + i) in
    for v = 0 to m - 1 do
      let compute = work_i /. env.(off_spd + v) in
      for u = 0 to m - 1 do
        let b = env.(off_best + u) in
        let nv = env.(off_next + v) in
        (* Dominated-edge gate: comm >= 0, and float rounding is monotone,
           so when even the comm-free cost cannot beat the row minimum the
           full candidate cannot either — skipping here changes neither
           the updates nor the relaxation count, only skips the
           bandwidth-table division. *)
        if b +. compute < nv then begin
          let comm =
            if u = v then 0.0 else delta_prev /. env.(off_bw_pp + (u * m) + v)
          in
          let cand = b +. comm +. compute in
          if cand < nv then begin
            env.(off_next + v) <- cand;
            parent.((i * m) + v) <- u;
            incr relaxations
          end
        end
      done
    done;
    Array.blit env off_next env off_best m
  done;
  let final = ref Float.infinity and final_u = ref (-1) in
  for u = 0 to m - 1 do
    let total =
      env.(off_best + u) +. (env.(off_delta + n) /. env.(off_bw_out + u))
    in
    if total < !final then begin
      final := total;
      final_u := u
    end
  done;
  Obs.add obs "core.general_dp.relaxations" !relaxations;
  let procs = Array.make n 0 in
  let u = ref !final_u in
  for i = n downto 1 do
    procs.(i - 1) <- !u;
    if i > 1 then u := parent.((i * m) + !u)
  done;
  (!final, Assignment.make ~m procs)

let optimal_latency instance = fst (solve instance)
