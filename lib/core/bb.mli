(** Branch-and-bound exact bi-criteria solver.

    Explores the same mapping space as {!Exact.solve} — interval partitions
    with disjoint replication sets — but as a depth-first search over
    (next stage, replication set) decisions with admissible pruning:

    - the partial latency (plus a remaining-work lower bound at the
      fastest available speed) already exceeds the threshold, or the
      incumbent when latency is the objective;
    - the partial failure probability — which can only grow as intervals
      are appended — already exceeds the threshold, or the incumbent when
      FP is the objective.

    Both bounds are exact lower bounds, so the search returns the true
    optimum while visiting far fewer nodes than the flat enumeration
    (the E16 ablation quantifies the gap).  Still worst-case exponential:
    the problems are NP-hard (Theorem 7).

    The search prices intervals from a flat prefix-sum/bandwidth snapshot
    and memoizes per-replication-set bounds (slowest speed, input sends,
    interval failure) in workspace tables reset at every solve (PR 5).
    Node counts are an implementation detail and may drift across
    versions; the returned solution is pinned bit-for-bit to the original
    implementation kept in {!Reference}. *)

open Relpipe_model
module B = Relpipe_util.Bitset

type stats = { nodes : int; evaluated : int; pruned : int }
(** Search effort: decision nodes expanded, complete mappings evaluated,
    and subtrees cut by the admissible bounds. *)

val prune_slack : float
(** The one bound-inflation slack shared by every sound-upper-bound cut:
    [16 x Float_cmp.default_eps].  Churn warm starts and the parallel
    probe's shared incumbent both add [prune_slack] (relative, floored at
    the same absolute magnitude — see {!inflate_bound}) to a
    known-feasible objective before using it as [?prune_above], so the
    eps-tolerant acceptance in {!Instance.better} can never tie-break an
    optimum out from under the bound.  Pinned by test/test_par_exact.ml. *)

val inflate_bound : float -> float
(** [inflate_bound b = b +. prune_slack *. max 1.0 (abs b)]: the smallest
    sound [?prune_above] derived from a known-feasible objective [b].
    Monotone, and [inflate_bound b >= b] for every finite [b]. *)

module Bound : sig
  type t
  (** A lock-free monotone-min cell: the shared incumbent of the parallel
      probe phase.  Improvements race through a CAS retry loop, so no
      published value is ever lost. *)

  val create : float -> t
  val get : t -> float

  val improve : t -> float -> unit
  (** Lower the cell to [v] if [v] is smaller; no-op otherwise. *)
end

val solve :
  ?prune_above:float -> Instance.t -> Instance.objective -> Solution.t option
(** Optimal interval mapping, or [None] when infeasible.  Agrees with
    {!Exact.solve} (property-tested).

    [?prune_above] (default [infinity]) is a static upper bound on the
    objective used as an extra admissible cut: any subtree whose objective
    lower bound {e strictly} exceeds it is pruned.  When the caller
    supplies a sound bound — the evaluated objective of any known-feasible
    mapping, e.g. the surviving solution of the previous churn step,
    inflated by {!inflate_bound} for the eps-tolerant acceptance in
    {!Instance.better} — the returned solution is {e bit-identical} to an
    unbounded solve: the search visits the surviving nodes in the same
    order, and the optimum is never strictly above the bound.  Only the
    node/pruned counts change.  [test/test_churn.ml] and the
    [churn-incremental] fuzz oracle pin this contract. *)

val solve_with_stats :
  ?prune_above:float ->
  Instance.t ->
  Instance.objective ->
  Solution.t option * stats

(** {1 Parallel solve} *)

type par_stats = {
  tasks : int;  (** frontier tasks distributed to the pool (deterministic) *)
  probe_nodes : int;
      (** nodes the probe phase expanded — scheduling-dependent *)
  confirm : stats;
      (** the confirming serial pass; depends on how tight the probe's
          bound got, so also scheduling-dependent *)
}

val solve_par :
  ?prune_above:float ->
  workers:int ->
  Instance.t ->
  Instance.objective ->
  Solution.t option
(** Parallel branch and bound over the {!Relpipe_pool.Pool} domains, in
    two phases.  {b Probe}: the root frontier — every (first interval,
    replication set) decision, best-first by its objective lower bound —
    is distributed over [workers] domains; each task runs a node-budgeted
    depth-first search sharing one atomic incumbent cell ({!Bound}), into
    which every completed feasible mapping publishes its
    {!inflate_bound}-inflated objective, cutting dominated subtrees on
    all domains at once.  {b Confirm}: one serial pass under the probe's
    final bound.  Because the cell only ever holds sound inflated upper
    bounds, the [?prune_above] contract of {!solve} applies and the
    answer is {e bit-identical to the serial solve at every worker count}
    — including mapping tie-breaks — while only node counts vary.
    test/test_par_exact.ml and the [par-exact-identity] fuzz oracle pin
    this at workers 1/2/8.

    Records the deterministic [core.exact.par.bb.solves] /
    [core.exact.par.bb.tasks] counters (plus the pool's own metrics);
    the confirming pass's scheduling-dependent [core.bb.*] counts are
    deliberately suppressed so metric snapshots stay byte-identical
    across worker counts. *)

val solve_par_with_stats :
  ?prune_above:float ->
  workers:int ->
  Instance.t ->
  Instance.objective ->
  Solution.t option * par_stats

(** {1 Recorded solve (certificate emission)} *)

module Record : sig
  type reason =
    | Threshold  (** a latency/failure threshold is already unreachable *)
    | Dominated
        (** the objective lower bound cannot beat the incumbent, whose
            objective upper-bounds the optimum *)

  type status =
    | Expanded
    | Evaluated of { latency : float; failure : float }
    | Pruned of { reason : reason; latency_lb : float; partial_failure : float }

  type node = { path : (int * int * B.t) list; status : status }
  (** One search node: the (first, last, replication set) intervals chosen
      so far, in stage order, and what the search did there. *)
end

val solve_recorded :
  Instance.t ->
  Instance.objective ->
  Solution.t option * stats * Record.node list
(** Serial solve that also returns the full search transcript, one entry
    per node in depth-first preorder, with every recorded number exactly
    the float the search computed.  Runs unbounded (no [?prune_above]) so
    each [Dominated] entry is justified by the incumbent alone — which is
    what the independent certificate checker in [lib/cert] re-derives.
    The transcript is the raw material for {!Certify.bb}. *)
