(** Branch-and-bound exact bi-criteria solver.

    Explores the same mapping space as {!Exact.solve} — interval partitions
    with disjoint replication sets — but as a depth-first search over
    (next stage, replication set) decisions with admissible pruning:

    - the partial latency (plus a remaining-work lower bound at the
      fastest available speed) already exceeds the threshold, or the
      incumbent when latency is the objective;
    - the partial failure probability — which can only grow as intervals
      are appended — already exceeds the threshold, or the incumbent when
      FP is the objective.

    Both bounds are exact lower bounds, so the search returns the true
    optimum while visiting far fewer nodes than the flat enumeration
    (the E16 ablation quantifies the gap).  Still worst-case exponential:
    the problems are NP-hard (Theorem 7).

    The search prices intervals from a flat prefix-sum/bandwidth snapshot
    and memoizes per-replication-set bounds (slowest speed, input sends,
    interval failure) in workspace tables reset at every solve (PR 5).
    Node counts are an implementation detail and may drift across
    versions; the returned solution is pinned bit-for-bit to the original
    implementation kept in {!Reference}. *)

open Relpipe_model

type stats = { nodes : int; evaluated : int; pruned : int }
(** Search effort: decision nodes expanded, complete mappings evaluated,
    and subtrees cut by the admissible bounds. *)

val solve :
  ?prune_above:float -> Instance.t -> Instance.objective -> Solution.t option
(** Optimal interval mapping, or [None] when infeasible.  Agrees with
    {!Exact.solve} (property-tested).

    [?prune_above] (default [infinity]) is a static upper bound on the
    objective used as an extra admissible cut: any subtree whose objective
    lower bound {e strictly} exceeds it is pruned.  When the caller
    supplies a sound bound — the evaluated objective of any known-feasible
    mapping, e.g. the surviving solution of the previous churn step,
    slightly inflated for the eps-tolerant acceptance in
    {!Instance.better} — the returned solution is {e bit-identical} to an
    unbounded solve: the search visits the surviving nodes in the same
    order, and the optimum is never strictly above the bound.  Only the
    node/pruned counts change.  [test/test_churn.ml] and the
    [churn-incremental] fuzz oracle pin this contract. *)

val solve_with_stats :
  ?prune_above:float ->
  Instance.t ->
  Instance.objective ->
  Solution.t option * stats
