type t = Monotonic | Virtual of state
and state = { mutable now : int; tick : int }

let monotonic () = Monotonic
let virtual_ ?(start = 0) ?(tick = 1000) () = Virtual { now = start; tick }
let is_virtual = function Virtual _ -> true | Monotonic -> false

let now_ns = function
  | Monotonic -> int_of_float (Unix.gettimeofday () *. 1e9)
  | Virtual s ->
      let t = s.now in
      s.now <- t + s.tick;
      t

let fork t i =
  match t with
  | Monotonic -> Monotonic
  | Virtual s -> Virtual { now = (i + 1) * 1_000_000_000; tick = s.tick }
