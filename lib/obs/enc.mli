(** Minimal JSON encoding helpers shared by the metrics and trace
    emitters.

    The observability layer sits below [relpipe.service] (whose [Json]
    module the rest of the system uses), so it carries its own tiny,
    byte-deterministic encoder: fixed field order is the caller's job,
    this module only renders scalars. *)

val string : string -> string
(** A JSON string literal, quotes included; escapes the quote and
    backslash characters and all control characters. *)

val number : float -> string
(** A JSON number: integral values within the exactly-representable
    range print without a fractional part ([5000]), everything else as
    [%.17g] (round-trippable).  Non-finite values print as the JSON
    strings [inf], [-inf] and [nan] so the output stays valid JSON. *)
