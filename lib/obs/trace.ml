type event = {
  ts : int;
  dur : int option;
  name : string;
  attrs : (string * string) list;
}

type t = {
  clk : Clock.t;
  mu : Mutex.t;
  mutable rev_events : event list;  (* most recent first *)
}

let create ~clock = { clk = clock; mu = Mutex.create (); rev_events = [] }
let clock t = t.clk

let add t ev =
  Mutex.lock t.mu;
  t.rev_events <- ev :: t.rev_events;
  Mutex.unlock t.mu

let span t ?(attrs = []) name f =
  let t0 = Clock.now_ns t.clk in
  Fun.protect
    ~finally:(fun () ->
      let t1 = Clock.now_ns t.clk in
      add t { ts = t0; dur = Some (t1 - t0); name; attrs })
    f

let instant t ?(attrs = []) name =
  add t { ts = Clock.now_ns t.clk; dur = None; name; attrs }

let events t =
  Mutex.lock t.mu;
  let evs = List.rev t.rev_events in
  Mutex.unlock t.mu;
  evs

let append ~into t =
  let evs = events t in
  Mutex.lock into.mu;
  into.rev_events <- List.rev_append evs into.rev_events;
  Mutex.unlock into.mu

let event_to_json ev =
  let buf = Buffer.create 96 in
  Buffer.add_string buf (Printf.sprintf "{\"ts\":%d" ev.ts);
  (match ev.dur with
  | Some d -> Buffer.add_string buf (Printf.sprintf ",\"dur\":%d" d)
  | None -> ());
  Buffer.add_string buf (",\"name\":" ^ Enc.string ev.name);
  (match ev.attrs with
  | [] -> ()
  | attrs ->
      Buffer.add_string buf ",\"attrs\":{";
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_string buf (Enc.string k);
          Buffer.add_char buf ':';
          Buffer.add_string buf (Enc.string v))
        attrs;
      Buffer.add_char buf '}');
  Buffer.add_char buf '}';
  Buffer.contents buf

let to_jsonl t =
  String.concat "" (List.map (fun ev -> event_to_json ev ^ "\n") (events t))
