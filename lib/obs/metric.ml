module Counter = struct
  type t = { live : bool; v : int Atomic.t }

  let make () = { live = true; v = Atomic.make 0 }
  let noop = { live = false; v = Atomic.make 0 }
  let add t k = if t.live then ignore (Atomic.fetch_and_add t.v k)
  let incr t = add t 1
  let value t = Atomic.get t.v
end

module Gauge = struct
  type t = { live : bool; v : int Atomic.t }

  let make () = { live = true; v = Atomic.make 0 }
  let noop = { live = false; v = Atomic.make 0 }
  let set t x = if t.live then Atomic.set t.v x

  let record_max t x =
    if t.live then begin
      let rec go () =
        let cur = Atomic.get t.v in
        if x > cur && not (Atomic.compare_and_set t.v cur x) then go ()
      in
      go ()
    end

  let value t = Atomic.get t.v
end

module Histogram = struct
  (* Buckets: 0 = underflow (v < 1, incl. 0, negatives, NaN); i in 1..40 =
     [2^(i-1), 2^i); 41 = overflow (v >= 2^40, incl. infinity).  Sized for
     nanosecond durations: 2^40 ns is ~18 minutes. *)
  let num_buckets = 42
  let overflow_edge = Float.ldexp 1.0 40

  let bucket_index v =
    if not (v >= 1.0) then 0
    else if v >= overflow_edge then num_buckets - 1
    else snd (Float.frexp v)

  let bucket_lower i = if i = 0 then Float.neg_infinity else Float.ldexp 1.0 (i - 1)

  type t = {
    live : bool;
    mu : Mutex.t;
    buckets : int array;
    mutable n : int;
    mutable total : float;
  }

  let make () =
    {
      live = true;
      mu = Mutex.create ();
      buckets = Array.make num_buckets 0;
      n = 0;
      total = 0.0;
    }

  let noop =
    {
      live = false;
      mu = Mutex.create ();
      buckets = Array.make num_buckets 0;
      n = 0;
      total = 0.0;
    }

  let observe t v =
    if t.live then begin
      Mutex.lock t.mu;
      let i = bucket_index v in
      t.buckets.(i) <- t.buckets.(i) + 1;
      t.n <- t.n + 1;
      t.total <- t.total +. v;
      Mutex.unlock t.mu
    end

  let count t = t.n
  let sum t = t.total

  let counts t =
    Mutex.lock t.mu;
    let c = Array.copy t.buckets in
    Mutex.unlock t.mu;
    c

  let merge a b =
    let t = make () in
    Array.iteri (fun i c -> t.buckets.(i) <- c) (counts a);
    Array.iteri (fun i c -> t.buckets.(i) <- t.buckets.(i) + c) (counts b);
    t.n <- a.n + b.n;
    t.total <- a.total +. b.total;
    t
end

type instrument =
  | C of Counter.t
  | G of Gauge.t
  | H of Histogram.t

type t = { live : bool; mu : Mutex.t; tbl : (string, instrument) Hashtbl.t }

let create () = { live = true; mu = Mutex.create (); tbl = Hashtbl.create 64 }
let noop () = { live = false; mu = Mutex.create (); tbl = Hashtbl.create 1 }
let is_live t = t.live

let lookup t name make_i =
  Mutex.lock t.mu;
  let i =
    match Hashtbl.find_opt t.tbl name with
    | Some i -> i
    | None ->
        let i = make_i () in
        Hashtbl.replace t.tbl name i;
        i
  in
  Mutex.unlock t.mu;
  i

let kind_error name =
  invalid_arg
    (Printf.sprintf "Obs.Metric: %S is already bound to another instrument kind"
       name)

let counter t name =
  if not t.live then Counter.noop
  else
    match lookup t name (fun () -> C (Counter.make ())) with
    | C c -> c
    | G _ | H _ -> kind_error name

let gauge t name =
  if not t.live then Gauge.noop
  else
    match lookup t name (fun () -> G (Gauge.make ())) with
    | G g -> g
    | C _ | H _ -> kind_error name

let histogram t name =
  if not t.live then Histogram.noop
  else
    match lookup t name (fun () -> H (Histogram.make ())) with
    | H h -> h
    | C _ | G _ -> kind_error name

let render_line name = function
  | C c ->
      Printf.sprintf "{\"name\":%s,\"type\":\"counter\",\"value\":%d}"
        (Enc.string name) (Counter.value c)
  | G g ->
      Printf.sprintf "{\"name\":%s,\"type\":\"gauge\",\"value\":%d}"
        (Enc.string name) (Gauge.value g)
  | H h ->
      let pairs = ref [] in
      let counts = Histogram.counts h in
      for i = Histogram.num_buckets - 1 downto 0 do
        if counts.(i) > 0 then
          pairs := Printf.sprintf "[%d,%d]" i counts.(i) :: !pairs
      done;
      Printf.sprintf
        "{\"name\":%s,\"type\":\"histogram\",\"count\":%d,\"sum\":%s,\"buckets\":[%s]}"
        (Enc.string name) (Histogram.count h)
        (Enc.number (Histogram.sum h))
        (String.concat "," !pairs)

let sorted_bindings t =
  Mutex.lock t.mu;
  (* devlint: allow RP-S204 — the fold's order is erased by the sort below *)
  let bindings = Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.tbl [] in
  Mutex.unlock t.mu;
  List.sort (fun (a, _) (b, _) -> String.compare a b) bindings

type view =
  | Counter_v of int
  | Gauge_v of int
  | Histogram_v of { count : int; sum : float }

let bindings t =
  List.map
    (fun (name, i) ->
      ( name,
        match i with
        | C c -> Counter_v (Counter.value c)
        | G g -> Gauge_v (Gauge.value g)
        | H h -> Histogram_v { count = Histogram.count h; sum = Histogram.sum h }
      ))
    (sorted_bindings t)

let render_jsonl t =
  String.concat ""
    (List.map
       (fun (name, i) -> render_line name i ^ "\n")
       (sorted_bindings t))
