(* Streaming aggregators: mergeable quantile sketch, exponential
   smoothing, bloom-filter duplicate tracking.  See stream.mli for the
   accuracy and merge-law contracts; test/test_stream.ml pins them. *)

module Imap = Map.Make (Int)

module Quantile = struct
  type t = {
    q_accuracy : float;
    q_gamma : float;
    q_log_gamma : float;
    mutable q_buckets : int Imap.t;
    mutable q_low : int;  (* values <= 0 and NaN *)
    mutable q_count : int;
  }

  (* Geometric buckets overflow [int_of_float] on infinity; park +inf in
     a bucket index no finite value can reach (|log v / log gamma| for
     finite v is far below 2^40 even at accuracy 1e-9). *)
  let inf_bucket = 1 lsl 40

  let create ?(accuracy = 0.01) () =
    if not (accuracy > 0.0 && accuracy < 1.0) then
      invalid_arg "Stream.Quantile.create: accuracy must be in (0, 1)";
    let gamma = (1.0 +. accuracy) /. (1.0 -. accuracy) in
    {
      q_accuracy = accuracy;
      q_gamma = gamma;
      q_log_gamma = Float.log gamma;
      q_buckets = Imap.empty;
      q_low = 0;
      q_count = 0;
    }

  let accuracy t = t.q_accuracy
  let gamma t = t.q_gamma

  let bucket_index t v =
    if Float.is_nan v || not (v > 0.0) then None
    else if not (Float.is_finite v) then Some inf_bucket
    else Some (int_of_float (Float.ceil (Float.log v /. t.q_log_gamma)))

  let add t v =
    t.q_count <- t.q_count + 1;
    match bucket_index t v with
    | None -> t.q_low <- t.q_low + 1
    | Some i ->
        t.q_buckets <-
          Imap.update i
            (function None -> Some 1 | Some c -> Some (c + 1))
            t.q_buckets

  let count t = t.q_count
  let low_count t = t.q_low
  let buckets t = Imap.bindings t.q_buckets

  let merge a b =
    if not (Float.equal a.q_accuracy b.q_accuracy) then
      invalid_arg "Stream.Quantile.merge: accuracies differ";
    {
      q_accuracy = a.q_accuracy;
      q_gamma = a.q_gamma;
      q_log_gamma = a.q_log_gamma;
      q_buckets =
        Imap.union (fun _ ca cb -> Some (ca + cb)) a.q_buckets b.q_buckets;
      q_low = a.q_low + b.q_low;
      q_count = a.q_count + b.q_count;
    }

  (* Upper edge of bucket [i]: the estimate returned for any rank that
     lands in it.  gamma^i computed through exp so huge negative indices
     underflow to 0 instead of raising. *)
  let bucket_edge t i =
    if i >= inf_bucket then Float.infinity
    else Float.exp (float_of_int i *. t.q_log_gamma)

  let quantile t phi =
    if Float.is_nan phi || not (phi >= 0.0 && phi <= 1.0) then
      invalid_arg "Stream.Quantile.quantile: phi must be in [0, 1]";
    if t.q_count = 0 then 0.0
    else begin
      let target =
        let r = int_of_float (Float.ceil (phi *. float_of_int t.q_count)) in
        if r < 1 then 1 else if r > t.q_count then t.q_count else r
      in
      if target <= t.q_low then 0.0
      else begin
        (* Sequential scan in index order; the map holds one bucket per
           distinct magnitude class, bounded by the value range, not the
           stream length. *)
        let remaining = ref (target - t.q_low) in
        let edge = ref 0.0 in
        (try
           Imap.iter
             (fun i c ->
               if !remaining > 0 then begin
                 remaining := !remaining - c;
                 edge := bucket_edge t i;
                 if !remaining <= 0 then raise Exit
               end)
             t.q_buckets
         with Exit -> ());
        !edge
      end
    end
end

module Ewma = struct
  type t = {
    e_alpha : float;
    mutable e_value : float;
    mutable e_count : int;
  }

  let create ~alpha =
    if not (alpha > 0.0 && alpha <= 1.0) then
      invalid_arg "Stream.Ewma.create: alpha must be in (0, 1]";
    { e_alpha = alpha; e_value = 0.0; e_count = 0 }

  let observe t x =
    t.e_value <-
      (if t.e_count = 0 then x
       else (t.e_alpha *. x) +. ((1.0 -. t.e_alpha) *. t.e_value));
    t.e_count <- t.e_count + 1

  let value t = t.e_value
  let count t = t.e_count
end

module Bloom = struct
  type t = {
    b_bits : int;
    b_hashes : int;
    b_bytes : Bytes.t;
    mutable b_added : int;
  }

  let create ?(fp_rate = 0.01) ~expected () =
    if expected <= 0 then
      invalid_arg "Stream.Bloom.create: expected must be positive";
    if not (fp_rate > 0.0 && fp_rate < 1.0) then
      invalid_arg "Stream.Bloom.create: fp_rate must be in (0, 1)";
    let ln2 = Float.log 2.0 in
    let m =
      let raw =
        Float.ceil
          (-.float_of_int expected *. Float.log fp_rate /. (ln2 *. ln2))
      in
      max 64 (int_of_float raw)
    in
    let k =
      max 1
        (int_of_float
           (Float.round (float_of_int m /. float_of_int expected *. ln2)))
    in
    {
      b_bits = m;
      b_hashes = k;
      b_bytes = Bytes.make ((m + 7) / 8) '\000';
      b_added = 0;
    }

  let bits t = t.b_bits
  let hashes t = t.b_hashes
  let added t = t.b_added

  (* FNV-1a over the key bytes, then a SplitMix64 finalizer for the
     second stream of double hashing.  Pure functions of the key, so
     filter contents are reproducible across runs and platforms. *)
  let fnv1a64 s =
    let basis = 0xcbf29ce484222325L and prime = 0x00000100000001b3L in
    let h = ref basis in
    String.iter
      (fun c ->
        h := Int64.logxor !h (Int64.of_int (Char.code c));
        h := Int64.mul !h prime)
      s;
    !h

  let splitmix_finalize z =
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
        0xbf58476d1ce4e5b9L in
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
        0x94d049bb133111ebL in
    Int64.logxor z (Int64.shift_right_logical z 31)

  let probes t key =
    let h64 = fnv1a64 key in
    let h1 = Int64.to_int h64 land max_int in
    (* Force the stride odd so it is non-zero and co-prime with any
       power-of-two component of the width. *)
    let h2 = Int64.to_int (splitmix_finalize h64) land max_int lor 1 in
    Array.init t.b_hashes (fun i -> (h1 + (i * h2)) land max_int mod t.b_bits)

  let get_bit t i = Char.code (Bytes.get t.b_bytes (i lsr 3)) land (1 lsl (i land 7)) <> 0

  let set_bit t i =
    let byte = i lsr 3 in
    Bytes.set t.b_bytes byte
      (Char.chr (Char.code (Bytes.get t.b_bytes byte) lor (1 lsl (i land 7))))

  let mem t key = Array.for_all (get_bit t) (probes t key)

  let add t key =
    let ps = probes t key in
    let seen = Array.for_all (get_bit t) ps in
    Array.iter (set_bit t) ps;
    t.b_added <- t.b_added + 1;
    seen

  let set_bits t =
    let n = ref 0 in
    Bytes.iter
      (fun c ->
        let b = ref (Char.code c) in
        while !b <> 0 do
          b := !b land (!b - 1);
          incr n
        done)
      t.b_bytes;
    !n

  let union a b =
    if a.b_bits <> b.b_bits || a.b_hashes <> b.b_hashes then
      invalid_arg "Stream.Bloom.union: filter geometries differ";
    let bytes = Bytes.copy a.b_bytes in
    Bytes.iteri
      (fun i c ->
        Bytes.set bytes i (Char.chr (Char.code (Bytes.get bytes i) lor Char.code c)))
      b.b_bytes;
    { b_bits = a.b_bits; b_hashes = a.b_hashes; b_bytes = bytes; b_added = a.b_added + b.b_added }
end
