let string s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let number x =
  if Float.is_integer x && Float.abs x < 1e15 then Printf.sprintf "%.0f" x
  else if Float.is_finite x then Printf.sprintf "%.17g" x
  else if Float.is_nan x then "\"nan\""
  else if x > 0.0 then "\"inf\""
  else "\"-inf\""
