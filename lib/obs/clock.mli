(** Injectable time source for metrics and tracing.

    Every instrumented component reads time through a [Clock.t] so tests
    can swap the real monotonic clock for a {e virtual} one whose reads
    are a pure function of the read count: each [now_ns] returns the
    current virtual time and advances it by a fixed tick.  Traces and
    duration histograms recorded under a virtual clock are therefore
    byte-stable across runs — and, combined with {!fork}, across worker
    counts.

    {!fork} derives a deterministic child clock for parallel work: job
    [i] gets its own virtual timeline starting at [(i + 1)] seconds, so
    timestamps taken on worker domains depend only on the job index,
    never on scheduling.  Forking the real clock returns the real
    clock. *)

type t

val monotonic : unit -> t
(** Wall-clock nanoseconds (via [Unix.gettimeofday]; resolution is
    platform-dependent). *)

val virtual_ : ?start:int -> ?tick:int -> unit -> t
(** A deterministic clock: the first [now_ns] returns [start] (default
    [0]) and every read advances time by [tick] nanoseconds (default
    [1000], i.e. 1us per read). *)

val is_virtual : t -> bool

val now_ns : t -> int
(** Current time in integer nanoseconds.  On a virtual clock this
    advances the clock by its tick. *)

val fork : t -> int -> t
(** [fork clock i] is a deterministic child clock for parallel job [i]:
    virtual clocks yield a fresh virtual clock based at
    [(i + 1) * 1_000_000_000] with the same tick; the monotonic clock is
    returned unchanged. *)
