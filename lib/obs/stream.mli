(** Streaming aggregators for million-request workloads.

    Three online summaries sized for request streams that are never
    materialized: a mergeable quantile sketch, an exponential-smoothing
    rate estimator and a bloom-filter duplicate tracker (the [Remember]
    idiom).  All three hold O(1) state with respect to the stream length,
    and all are {b deterministic}: their contents are pure functions of
    the observed multiset (sketch, bloom) or sequence (ewma), never of
    timing or scheduling.

    {b Merge laws.}  {!Quantile.merge} and {!Bloom.union} combine
    per-partition summaries by pointwise integer addition / bitwise or,
    so both are {e exactly} associative and commutative: merging
    per-chunk sketches in any order yields bit-identical state to one
    sketch fed the whole stream.  [test/test_stream.ml] pins these laws
    and the accuracy guarantees below; the [stream-aggregation] fuzz
    oracle checks them end to end against batch-materialized
    references. *)

(** Mergeable quantile sketch over positive values (latencies, sizes).

    A DDSketch-style summary: geometric buckets with growth factor
    [gamma = (1 + accuracy) / (1 - accuracy)]; value [v > 0] lands in
    bucket [ceil (log_gamma v)] and non-positive values in a dedicated
    low bucket.  Bucket counts are integers in an ordered map, so two
    sketches over the same multiset are structurally equal however the
    stream was chunked or merged.

    {b Accuracy guarantee.}  {!quantile} returns the upper edge of the
    bucket holding the target rank, so for a stream of positive values
    with exact offline [phi]-quantile [x*]:

    - {e relative error}: [x* <= q <= gamma * x*] (within a ulp-level
      slack at bucket edges), i.e. a one-sided relative error of at most
      [gamma - 1 ~= 2 * accuracy];
    - {e rank bracketing}: at least [ceil (phi * n)] stream elements are
      [<= q], and fewer than [ceil (phi * n)] are below the bucket's
      lower edge [q / gamma] — the estimate's rank interval contains the
      target rank. *)
module Quantile : sig
  type t

  val create : ?accuracy:float -> unit -> t
  (** [accuracy] (default [0.01]) must be in (0, 1).
      @raise Invalid_argument otherwise. *)

  val accuracy : t -> float

  val gamma : t -> float
  (** The bucket growth factor [(1 + accuracy) / (1 - accuracy)]. *)

  val add : t -> float -> unit
  (** Record one value.  NaN counts into the low bucket (it is never a
      meaningful latency; dropping it silently would break the
      [count]-vs-stream-length identity the fuzz oracle checks). *)

  val count : t -> int
  (** Number of values recorded (merges add counts). *)

  val low_count : t -> int
  (** Values [<= 0] (and NaN) seen — reported separately because the
      geometric buckets only cover positive values. *)

  val buckets : t -> (int * int) list
  (** Non-empty buckets as [(index, count)], sorted by index — the full
      sketch state, for structural-equality tests and renderers. *)

  val merge : t -> t -> t
  (** Fresh sketch holding both operands' values (pointwise count
      addition; exactly associative and commutative).
      @raise Invalid_argument when accuracies differ. *)

  val quantile : t -> float -> float
  (** [quantile t phi] for [phi] in [\[0, 1\]]: an estimate of the
      [phi]-quantile under the guarantee above ([phi = 0.] is the
      minimum bucket, [1.] the maximum).  [0.] on an empty sketch and
      when the target rank falls into the low bucket.
      @raise Invalid_argument when [phi] is outside [\[0, 1\]]. *)
end

(** Exponentially smoothed scalar (the classic [smooth prev alpha x]):
    [s <- alpha * x + (1 - alpha) * s], seeded by the first observation.
    Used for arrival-rate and throughput estimates over a request
    stream; sequential by design (rates are not mergeable). *)
module Ewma : sig
  type t

  val create : alpha:float -> t
  (** [alpha] in (0, 1].  @raise Invalid_argument otherwise. *)

  val observe : t -> float -> unit
  val value : t -> float
  (** Current smoothed value; [0.] before the first observation. *)

  val count : t -> int
end

(** Bloom-filter membership over strings: the [Remember] idiom for
    duplicate detection in unbounded streams.  No false negatives ever;
    false positives at most [fp_rate] while at most [expected] distinct
    keys have been added (the standard [m = -n ln p / (ln 2)^2],
    [k = m/n ln 2] sizing).  Hashing is FNV-1a with a SplitMix64
    finalizer — a pure function of the key bytes, so filters are
    deterministic and {!union} is exactly associative/commutative. *)
module Bloom : sig
  type t

  val create : ?fp_rate:float -> expected:int -> unit -> t
  (** @raise Invalid_argument unless [expected > 0] and [fp_rate] is in
      (0, 1). *)

  val bits : t -> int
  (** Filter width [m] in bits. *)

  val hashes : t -> int
  (** Probe count [k]. *)

  val mem : t -> string -> bool
  (** [false] is definite; [true] may be a false positive. *)

  val add : t -> string -> bool
  (** Record a key; returns [mem] {e before} the insertion — [true]
      means the key was possibly seen before (the duplicate signal). *)

  val added : t -> int
  (** Keys passed to {!add} (with multiplicity). *)

  val set_bits : t -> int
  (** Population count of the bit array (load indicator). *)

  val union : t -> t -> t
  (** Fresh filter: bitwise or of both operands ({!added} adds).
      @raise Invalid_argument when the geometries ([bits], [hashes])
      differ. *)
end
