(** Structured span/event tracer.

    A tracer buffers {!event}s and renders them as JSONL.  Spans record
    their start timestamp and duration (two clock reads); instants a
    single timestamp.  Events are appended at {e completion} time, so a
    buffer read back with {!events} lists spans in completion order —
    which is deterministic for sequential code.

    For parallel work, give each job its own tracer over a
    {!Clock.fork}ed clock and {!append} the children back into the parent
    {e in job order}: the merged buffer is then independent of worker
    count and scheduling, which is what lets the snapshot tests pin
    virtual-clock traces byte-for-byte. *)

type event = {
  ts : int;  (** start timestamp, ns *)
  dur : int option;  (** [Some d] for spans, [None] for instants *)
  name : string;
  attrs : (string * string) list;
}

type t

val create : clock:Clock.t -> t
val clock : t -> Clock.t

val span : t -> ?attrs:(string * string) list -> string -> (unit -> 'a) -> 'a
(** Time [f]; the event is recorded when [f] returns (also on
    exception). *)

val instant : t -> ?attrs:(string * string) list -> string -> unit

val events : t -> event list
(** Completed events, in completion order. *)

val append : into:t -> t -> unit
(** Append [t]'s events (in order) to [into]'s buffer. *)

val to_jsonl : t -> string
(** One event per line:
    [{"ts":0,"dur":1000,"name":"engine.phase.prepare","attrs":{"requests":"2"}}].
    [dur] is omitted for instants, [attrs] when empty. *)
