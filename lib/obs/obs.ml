type t = {
  metrics : Metric.t;
  trace : Trace.t option;
  clock : Clock.t;
}

let create ?(tracing = false) ?clock () =
  let clock = match clock with Some c -> c | None -> Clock.monotonic () in
  {
    metrics = Metric.create ();
    trace = (if tracing then Some (Trace.create ~clock) else None);
    clock;
  }

let noop () =
  { metrics = Metric.noop (); trace = None; clock = Clock.monotonic () }

let fork t i =
  let clock = Clock.fork t.clock i in
  {
    metrics = t.metrics;
    trace = Option.map (fun _ -> Trace.create ~clock) t.trace;
    clock;
  }

let merge_child ~into child =
  match (into.trace, child.trace) with
  | Some parent, Some c -> Trace.append ~into:parent c
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* Ambient context                                                     *)
(* ------------------------------------------------------------------ *)

let ambient_key : t option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let ambient () = Domain.DLS.get ambient_key
let set_ambient o = Domain.DLS.set ambient_key o

let with_ambient o f =
  let old = ambient () in
  Domain.DLS.set ambient_key o;
  Fun.protect ~finally:(fun () -> Domain.DLS.set ambient_key old) f

(* ------------------------------------------------------------------ *)
(* Option-accepting conveniences                                       *)
(* ------------------------------------------------------------------ *)

let add obs name k =
  match obs with
  | None -> ()
  | Some o -> Metric.Counter.add (Metric.counter o.metrics name) k

let incr obs name = add obs name 1

let observe obs name v =
  match obs with
  | None -> ()
  | Some o -> Metric.Histogram.observe (Metric.histogram o.metrics name) v

let gauge_set obs name x =
  match obs with
  | None -> ()
  | Some o -> Metric.Gauge.set (Metric.gauge o.metrics name) x

let gauge_max obs name x =
  match obs with
  | None -> ()
  | Some o -> Metric.Gauge.record_max (Metric.gauge o.metrics name) x

let span obs ?attrs name f =
  match obs with
  | Some { trace = Some tr; _ } -> Trace.span tr ?attrs name f
  | Some { trace = None; _ } | None -> f ()

let instant obs ?attrs name =
  match obs with
  | Some { trace = Some tr; _ } -> Trace.instant tr ?attrs name
  | Some { trace = None; _ } | None -> ()

(* ------------------------------------------------------------------ *)
(* Snapshots                                                           *)
(* ------------------------------------------------------------------ *)

let metrics_jsonl t = Metric.render_jsonl t.metrics
let trace_jsonl t = match t.trace with Some tr -> Trace.to_jsonl tr | None -> ""
