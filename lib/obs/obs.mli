(** The observability context: one {!Metric.t} registry, an optional
    {!Trace.t} tracer and the {!Clock.t} they share.

    Instrumented code takes a [t option] (or reads the domain-local
    {!ambient}) and calls the [option]-accepting conveniences below,
    which do nothing on [None] — so instrumentation is zero-cost when
    disabled and never perturbs results when enabled (the
    [metrics-invariance] fuzz oracle checks the latter end to end).

    {b Parallel work.}  {!fork} derives a per-job view: the {e same}
    metrics registry (counters are atomic and integer-valued, so their
    totals are scheduling-independent) but a private tracer over a
    {!Clock.fork}ed clock.  The parent merges children back {e in job
    order} with {!merge_child}, keeping traces byte-identical across
    worker counts under a virtual clock. *)

type t = {
  metrics : Metric.t;
  trace : Trace.t option;
  clock : Clock.t;
}

val create : ?tracing:bool -> ?clock:Clock.t -> unit -> t
(** Fresh registry; [tracing] (default [false]) attaches a tracer;
    [clock] defaults to {!Clock.monotonic}. *)

val noop : unit -> t
(** A context whose registry discards everything and which never traces
    — for measuring the cost of the enabled-but-ignored path
    ([bench --obs-guard]). *)

val fork : t -> int -> t
(** The per-job view for job [i] (see above). *)

val merge_child : into:t -> t -> unit
(** Append a forked child's trace events to the parent's tracer (no-op
    when either side does not trace). *)

(** {1 Ambient context}

    A domain-local slot for code (DP kernels, branch-and-bound) whose
    call chains would otherwise need an [obs] argument through many
    layers.  Workers set it around each job; the default is [None]. *)

val ambient : unit -> t option
val set_ambient : t option -> unit

val with_ambient : t option -> (unit -> 'a) -> 'a
(** Set, run, restore (exception-safe). *)

(** {1 Option-accepting conveniences}

    All are no-ops on [None]; metric lookups go through the registry by
    name. *)

val add : t option -> string -> int -> unit
val incr : t option -> string -> unit
val observe : t option -> string -> float -> unit
val gauge_set : t option -> string -> int -> unit
val gauge_max : t option -> string -> int -> unit

val span : t option -> ?attrs:(string * string) list -> string -> (unit -> 'a) -> 'a
(** Runs the body directly when tracing is off. *)

val instant : t option -> ?attrs:(string * string) list -> string -> unit

(** {1 Snapshots} *)

val metrics_jsonl : t -> string
(** {!Metric.render_jsonl} of the registry (sorted by name). *)

val trace_jsonl : t -> string
(** The trace as JSONL, [""] when tracing is off. *)
