(** The metrics registry: named counters, gauges and histograms.

    {b Determinism.}  Counters and gauges hold integers behind [Atomic]
    operations, and histogram bucket counts are integers, so their final
    values are independent of the order in which concurrent domains
    record — a batch instrumented at 8 workers snapshots the same bytes
    as at 1 worker.  Histogram {e sums} are floats; they stay exact (and
    therefore order-independent) as long as the recorded values are
    integral and small enough to add exactly, which is the case for the
    virtual-clock durations the test harness pins.

    {b No-op sink.}  {!noop} builds a registry whose instruments discard
    every record: instrumented code can keep a registry handle
    unconditionally and still cost nothing when observability is off.
    The bench harness guards this with [bench --obs-guard]. *)

module Counter : sig
  type t

  val make : unit -> t
  (** A standalone (unregistered) live counter. *)

  val noop : t
  (** The shared discard-everything counter. *)

  val incr : t -> unit

  val add : t -> int -> unit
  (** Atomic: concurrent adds from multiple domains lose no updates. *)

  val value : t -> int
end

module Gauge : sig
  type t

  val make : unit -> t
  val noop : t
  val set : t -> int -> unit

  val record_max : t -> int -> unit
  (** Monotone high-water mark (atomic compare-and-set loop). *)

  val value : t -> int
end

module Histogram : sig
  (** Fixed log-scale buckets: bucket [0] is the underflow bucket
      (values [< 1.0], including zero, negatives and NaN), buckets
      [1..40] hold values in [[2^(i-1), 2^i)], and the last bucket
      collects everything [>= 2^40] (including [infinity]).  Every float
      lands in exactly one bucket. *)

  type t

  val num_buckets : int
  (** [42]. *)

  val bucket_index : float -> int
  (** Total function into [0 .. num_buckets - 1]. *)

  val bucket_lower : int -> float
  (** Inclusive lower edge of a bucket ([neg_infinity] for bucket 0). *)

  val make : unit -> t
  val noop : t

  val observe : t -> float -> unit
  (** Record one value (mutex-protected; safe from multiple domains). *)

  val count : t -> int
  val sum : t -> float

  val counts : t -> int array
  (** Per-bucket counts, length {!num_buckets} (a copy). *)

  val merge : t -> t -> t
  (** A fresh histogram holding both operands' samples: bucket counts and
      totals add; the sum is [sum a +. sum b]. *)
end

type t
(** A registry: a mutable name -> instrument table. *)

val create : unit -> t

val noop : unit -> t
(** A registry whose instruments are all no-ops (nothing is stored and
    {!render_jsonl} is empty). *)

val is_live : t -> bool

val counter : t -> string -> Counter.t
(** Get or create.  @raise Invalid_argument if the name is already bound
    to a different instrument kind. *)

val gauge : t -> string -> Gauge.t
val histogram : t -> string -> Histogram.t

type view =
  | Counter_v of int
  | Gauge_v of int
  | Histogram_v of { count : int; sum : float }
      (** Snapshot of one instrument, for table renderers. *)

val bindings : t -> (string * view) list
(** Current instruments with their values, sorted by name. *)

val render_jsonl : t -> string
(** One JSON object per line, sorted by metric name (byte-deterministic
    given deterministic instrument contents):
    {v
{"name":"engine.jobs","type":"counter","value":3}
{"name":"pool.task.duration_ns","type":"histogram","count":2,"sum":2000,"buckets":[[11,2]]}
    v}
    Histogram [buckets] lists [[index, count]] pairs for non-empty
    buckets only. *)
