(** Compact textual syntax for interval mappings.

    Grammar: intervals separated by [';'], each interval written
    [first-last:proc,proc,...] (or [stage:procs] for a single-stage
    interval).  Whitespace around tokens is ignored.  Example — the
    paper's Fig. 5 split mapping on 11 processors:
    {v 1:0; 2:1,2,3,4,5,6,7,8,9,10 v}

    Used by the CLI's [eval] and [lint] subcommands so a user can price
    or statically check an arbitrary mapping without writing OCaml.

    Like {!Textio}, parsing is layered: {!parse_raw} keeps source spans
    and performs only syntactic checks, so the [Relpipe_analysis] mapping
    pass can report structural defects (gaps, overlaps, out-of-range
    processors) with precise locations; {!parse} adds
    {!Mapping.validate}. *)

type raw_interval = {
  r_first : int;
  r_last : int;
  r_procs : (int * Relpipe_util.Loc.span) list;
      (** each processor with the span of its token *)
  r_span : Relpipe_util.Loc.span;  (** the whole interval chunk *)
}

type error = { message : string; span : Relpipe_util.Loc.span option }

val parse_raw : string -> (raw_interval list, error) result
(** Syntactic parse; no structural validation beyond token shape. *)

val format_error : error -> string
(** ["line:col: message"], or just the message for spanless errors. *)

val parse : n:int -> m:int -> string -> (Mapping.t, string) result
(** Parse and validate against a pipeline of [n] stages and [m]
    processors.  Syntax errors carry the source position. *)

val to_string : Mapping.t -> string
(** Canonical rendering; round-trips through {!parse}. *)
