module Loc = Relpipe_util.Loc

type raw_interval = {
  r_first : int;
  r_last : int;
  r_procs : (int * Loc.span) list;
  r_span : Loc.span;
}

type error = { message : string; span : Loc.span option }

let err ?span fmt = Format.kasprintf (fun message -> Error { message; span }) fmt

let format_error e =
  match e.span with
  | None -> e.message
  | Some span -> Format.asprintf "%a: %s" Loc.pp_span span e.message

let is_blank c = c = ' ' || c = '\t' || c = '\n' || c = '\r'

(* Narrow the byte range [i, j) of [text] to its non-blank core. *)
let trimmed text i j =
  let i = ref i and j = ref j in
  while !i < !j && is_blank text.[!i] do
    incr i
  done;
  while !j > !i && is_blank text.[!j - 1] do
    decr j
  done;
  (!i, !j)

(* Offset ranges of [sep]-separated fields of [text.(start..stop)]. *)
let fields text ~start ~stop sep =
  let rec go from acc =
    match String.index_from_opt text from sep with
    | Some k when k < stop -> go (k + 1) ((from, k) :: acc)
    | _ -> List.rev ((from, stop) :: acc)
  in
  go start []

let span_of text i j = Loc.span_of_offsets text i j

let parse_int text name (i, j) =
  let i, j = trimmed text i j in
  let tok = String.sub text i (j - i) in
  match int_of_string_opt tok with
  | Some v -> Ok (v, span_of text i j)
  | None -> err ~span:(span_of text i j) "bad %s %S" name tok

let parse_interval text (ci, cj) =
  let ( let* ) = Result.bind in
  let ti, tj = trimmed text ci cj in
  let chunk_span = span_of text ti tj in
  let chunk () = String.sub text ti (tj - ti) in
  match fields text ~start:ci ~stop:cj ':' with
  | [ range; procs ] ->
      let* r_first, r_last =
        match fields text ~start:(fst range) ~stop:(snd range) '-' with
        | [ single ] ->
            let* k, _ = parse_int text "stage" single in
            Ok (k, k)
        | [ lo; hi ] ->
            let* lo, _ = parse_int text "stage" lo in
            let* hi, _ = parse_int text "stage" hi in
            Ok (lo, hi)
        | _ ->
            let ri, rj = trimmed text (fst range) (snd range) in
            err ~span:(span_of text ri rj) "bad stage range %S"
              (String.sub text ri (rj - ri))
      in
      let* r_procs =
        List.fold_left
          (fun acc field ->
            let* acc = acc in
            let fi, fj = trimmed text (fst field) (snd field) in
            if fi = fj then Ok acc
            else
              let* u = parse_int text "processor" (fi, fj) in
              Ok (u :: acc))
          (Ok [])
          (fields text ~start:(fst procs) ~stop:(snd procs) ',')
      in
      if r_procs = [] then
        err ~span:chunk_span "interval %S has no processor" (chunk ())
      else Ok { r_first; r_last; r_procs = List.rev r_procs; r_span = chunk_span }
  | _ ->
      err ~span:chunk_span "bad interval %S (expected range:procs)" (chunk ())

let parse_raw text =
  let chunks =
    List.filter
      (fun (i, j) ->
        let i, j = trimmed text i j in
        i < j)
      (fields text ~start:0 ~stop:(String.length text) ';')
  in
  if chunks = [] then err "empty mapping"
  else begin
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | chunk :: tl -> (
          match parse_interval text chunk with
          | Ok iv -> go (iv :: acc) tl
          | Error _ as e -> e)
    in
    go [] chunks
  end

let parse ~n ~m text =
  match parse_raw text with
  | Error e -> Error (format_error e)
  | Ok raw ->
      Mapping.validate ~n ~m
        (List.map
           (fun iv ->
             {
               Mapping.first = iv.r_first;
               last = iv.r_last;
               procs = List.map fst iv.r_procs;
             })
           raw)

let to_string mapping =
  String.concat "; "
    (List.map
       (fun iv ->
         let range =
           if iv.Mapping.first = iv.Mapping.last then
             string_of_int iv.Mapping.first
           else Printf.sprintf "%d-%d" iv.Mapping.first iv.Mapping.last
         in
         Printf.sprintf "%s:%s" range
           (String.concat "," (List.map string_of_int iv.Mapping.procs)))
       (Mapping.intervals mapping))
