type stage = { work : float; output : float }

type t = {
  input : float;
  arr : stage array;
  work_prefix : float array;  (* work_prefix.(k) = sum of w_1..w_k *)
}

let valid_cost x = Float.is_finite x && x >= 0.0

let make ~input stages =
  if stages = [] then invalid_arg "Pipeline.make: a pipeline needs stages";
  if not (valid_cost input) then
    invalid_arg "Pipeline.make: input size must be finite and non-negative";
  List.iter
    (fun s ->
      if not (valid_cost s.work && valid_cost s.output) then
        invalid_arg "Pipeline.make: stage costs must be finite, non-negative")
    stages;
  let arr = Array.of_list stages in
  let work_prefix = Relpipe_util.Prefix.build (Array.map (fun s -> s.work) arr) in
  { input; arr; work_prefix }

let of_costs ~input costs =
  make ~input (List.map (fun (work, output) -> { work; output }) costs)

let length t = Array.length t.arr

let stage t k =
  if k < 1 || k > length t then invalid_arg "Pipeline.stage: index out of range";
  t.arr.(k - 1)

let work t k = (stage t k).work

let delta t k =
  if k < 0 || k > length t then invalid_arg "Pipeline.delta: index out of range";
  if k = 0 then t.input else t.arr.(k - 1).output

let work_sum t ~first ~last =
  if first < 1 || last > length t || first > last then
    invalid_arg "Pipeline.work_sum: invalid interval";
  t.work_prefix.(last) -. t.work_prefix.(first - 1)

let total_work t = t.work_prefix.(length t)
let work_prefixes t = Array.copy t.work_prefix

let stages t = Array.to_list t.arr

let equal a b =
  a.input = b.input
  && Array.length a.arr = Array.length b.arr
  && Array.for_all2 (fun x y -> x.work = y.work && x.output = y.output) a.arr b.arr

let pp ppf t =
  Format.fprintf ppf "@[<h>[%g]" t.input;
  Array.iter (fun s -> Format.fprintf ppf " -(w=%g)-> [%g]" s.work s.output) t.arr;
  Format.fprintf ppf "@]"
