(** The application model: a linear pipeline of [n] stages (paper Fig. 1).

    Stage [k] (1-indexed, [1 <= k <= n]) reads an input of size [delta
    (k-1)], performs [work k] computations and emits an output of size
    [delta k].  [delta 0] is the size of the initial input held by [Pin];
    [delta n] is the final result returned to [Pout]. *)

type stage = {
  work : float;  (** w_k: computation amount of the stage *)
  output : float;  (** delta_k: size of the data the stage emits *)
}

type t
(** An immutable pipeline. *)

val make : input:float -> stage list -> t
(** [make ~input stages] builds a pipeline whose initial input has size
    [input] (delta_0).  @raise Invalid_argument when [stages] is empty or
    any cost is negative, non-finite, or (for data sizes) zero is allowed
    but negative is not. *)

val of_costs : input:float -> (float * float) list -> t
(** [of_costs ~input costs] with [costs = \[(w_1, delta_1); ...\]]. *)

val length : t -> int
(** Number of stages [n]. *)

val stage : t -> int -> stage
(** [stage p k] for [1 <= k <= n].  @raise Invalid_argument otherwise. *)

val work : t -> int -> float
(** [work p k] is w_k. *)

val delta : t -> int -> float
(** [delta p k] for [0 <= k <= n]: size of the data flowing between stage
    [k] and stage [k+1] (with the conventions above for 0 and n). *)

val work_sum : t -> first:int -> last:int -> float
(** Total computation of the stage interval [\[first, last\]] (inclusive,
    1-indexed).  O(1) via prefix sums.
    @raise Invalid_argument on an invalid interval. *)

val total_work : t -> float
(** [work_sum] over the whole pipeline. *)

val work_prefixes : t -> float array
(** A copy of the internal prefix-sum table [p] (length [n + 1], built with
    {!Relpipe_util.Prefix.build}): [p.(k)] is the compensated sum
    [w_1 + ... + w_k], so [work_sum ~first ~last = p.(last) -. p.(first-1)]
    bit-for-bit.  Hot kernels snapshot this once per solve and price stage
    intervals from flat arrays. *)

val stages : t -> stage list
(** The stages in order. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
