module Loc = Relpipe_util.Loc

type raw_endpoint = Rin | Rout | Rproc of int

type raw_stage = {
  stage_work : float;
  stage_output : float;
  stage_span : Loc.span;
}

type raw_proc = {
  proc_speed : float;
  proc_failure : float;
  proc_span : Loc.span;
}

type raw_link = {
  link_a : raw_endpoint;
  link_b : raw_endpoint;
  link_bw : float;
  link_span : Loc.span;
}

type raw = {
  raw_input : (float * Loc.span) option;
  raw_stages : raw_stage list;
  raw_procs : raw_proc list;
  raw_default_bw : (float * Loc.span) option;
  raw_links : raw_link list;
}

type error = { message : string; span : Loc.span option }

let err ?span fmt = Format.kasprintf (fun message -> Error { message; span }) fmt

let format_error e =
  match e.span with
  | None -> e.message
  | Some span -> Format.asprintf "%a: %s" Loc.pp_span span e.message

(* ------------------------------------------------------------------ *)
(* Tokenizing                                                          *)
(* ------------------------------------------------------------------ *)

let strip_comment line =
  match String.index_opt line '#' with
  | Some i -> String.sub line 0 i
  | None -> line

let is_blank c = c = ' ' || c = '\t' || c = '\r'

(* Tokens of one line, each with its 1-based starting column. *)
let tokens_of_line line =
  let line = strip_comment line in
  let n = String.length line in
  let rec go i acc =
    if i >= n then List.rev acc
    else if is_blank line.[i] then go (i + 1) acc
    else begin
      let j = ref i in
      while !j < n && not (is_blank line.[!j]) do
        incr j
      done;
      go !j ((String.sub line i (!j - i), i + 1) :: acc)
    end
  in
  go 0 []

let token_span ~line (tok, col) =
  Loc.span_of_cols ~line ~start_col:col ~stop_col:(col + String.length tok)

(* Span of a whole directive: first token start to last token end. *)
let directive_span ~line toks =
  match toks with
  | [] -> Loc.span_of_cols ~line ~start_col:1 ~stop_col:1
  | first :: _ ->
      let last = List.nth toks (List.length toks - 1) in
      Loc.union (token_span ~line first) (token_span ~line last)

(* ------------------------------------------------------------------ *)
(* Raw parsing                                                         *)
(* ------------------------------------------------------------------ *)

let float_of ~line (tok, col) =
  match float_of_string_opt tok with
  | Some x -> Ok x
  | None -> err ~span:(token_span ~line (tok, col)) "bad number %S" tok

let endpoint_of ~line (tok, col) =
  match tok with
  | "in" -> Ok Rin
  | "out" -> Ok Rout
  | _ -> (
      match int_of_string_opt tok with
      | Some u when u >= 0 -> Ok (Rproc u)
      | Some _ | None ->
          err ~span:(token_span ~line (tok, col))
            "bad endpoint %S (expected \"in\", \"out\" or a processor index)"
            tok)

type builder = {
  mutable input : (float * Loc.span) option;
  mutable stages : raw_stage list;  (* reversed *)
  mutable procs : raw_proc list;  (* reversed *)
  mutable default_bw : (float * Loc.span) option;
  mutable links : raw_link list;  (* reversed *)
}

let parse_raw text =
  let b =
    { input = None; stages = []; procs = []; default_bw = None; links = [] }
  in
  let ( let* ) = Result.bind in
  let parse_line line toks =
    let span = directive_span ~line toks in
    match toks with
    | [] -> Ok ()
    | [ ("input", _); x ] ->
        let* v = float_of ~line x in
        b.input <- Some (v, span);
        Ok ()
    | [ ("stage", _); w; d ] ->
        let* stage_work = float_of ~line w in
        let* stage_output = float_of ~line d in
        b.stages <- { stage_work; stage_output; stage_span = span } :: b.stages;
        Ok ()
    | [ ("proc", _); s; f ] ->
        let* proc_speed = float_of ~line s in
        let* proc_failure = float_of ~line f in
        b.procs <- { proc_speed; proc_failure; proc_span = span } :: b.procs;
        Ok ()
    | [ ("link", _); ("default", _); bw ] ->
        let* v = float_of ~line bw in
        b.default_bw <- Some (v, span);
        Ok ()
    | [ ("link", _); a; bb; bw ] ->
        let* link_a = endpoint_of ~line a in
        let* link_b = endpoint_of ~line bb in
        let* link_bw = float_of ~line bw in
        b.links <- { link_a; link_b; link_bw; link_span = span } :: b.links;
        Ok ()
    | ((("input" | "stage" | "proc" | "link") as directive), _) :: _ ->
        err ~span "wrong number of arguments for %S" directive
    | (tok, col) :: _ ->
        err ~span:(token_span ~line (tok, col)) "unknown directive %S" tok
  in
  let lines = String.split_on_char '\n' text in
  let rec parse_all lineno = function
    | [] -> Ok ()
    | line :: tl -> (
        match parse_line lineno (tokens_of_line line) with
        | Ok () -> parse_all (lineno + 1) tl
        | Error _ as e -> e)
  in
  let* () = parse_all 1 lines in
  Ok
    {
      raw_input = b.input;
      raw_stages = List.rev b.stages;
      raw_procs = List.rev b.procs;
      raw_default_bw = b.default_bw;
      raw_links = List.rev b.links;
    }

(* ------------------------------------------------------------------ *)
(* Building                                                            *)
(* ------------------------------------------------------------------ *)

let endpoint_of_raw ~m = function
  | Rin -> Ok Platform.Pin
  | Rout -> Ok Platform.Pout
  | Rproc u ->
      if u >= 0 && u < m then Ok (Platform.Proc u)
      else Error (Printf.sprintf "processor index %d out of range 0..%d" u (m - 1))

let endpoint_key = function
  | Platform.Pin -> -1
  | Platform.Pout -> -2
  | Platform.Proc u -> u

let build raw =
  let ( let* ) = Result.bind in
  let* input =
    match raw.raw_input with
    | Some (v, _) -> Ok v
    | None -> err "missing `input` directive"
  in
  let* () = if raw.raw_stages = [] then err "no `stage` directives" else Ok () in
  let* () = if raw.raw_procs = [] then err "no `proc` directives" else Ok () in
  let procs = Array.of_list raw.raw_procs in
  let m = Array.length procs in
  let tbl = Hashtbl.create 16 in
  let* () =
    List.fold_left
      (fun acc l ->
        let* () = acc in
        let check e =
          match endpoint_of_raw ~m e with
          | Ok e -> Ok e
          | Error msg -> err ~span:l.link_span "%s" msg
        in
        let* ea = check l.link_a in
        let* eb = check l.link_b in
        Hashtbl.replace tbl (endpoint_key ea, endpoint_key eb) l.link_bw;
        Hashtbl.replace tbl (endpoint_key eb, endpoint_key ea) l.link_bw;
        Ok ())
      (Ok ()) raw.raw_links
  in
  let missing = ref None in
  let bandwidth a bb =
    match Hashtbl.find_opt tbl (endpoint_key a, endpoint_key bb) with
    | Some v -> v
    | None -> (
        match raw.raw_default_bw with
        | Some (v, _) -> v
        | None ->
            if !missing = None then
              missing :=
                Some
                  (Format.asprintf "no bandwidth for link %a-%a (and no default)"
                     Platform.pp_endpoint a Platform.pp_endpoint bb);
            1.0)
  in
  let* platform =
    match
      Platform.make
        ~speeds:(Array.map (fun p -> p.proc_speed) procs)
        ~failures:(Array.map (fun p -> p.proc_failure) procs)
        ~bandwidth
    with
    | p -> ( match !missing with None -> Ok p | Some msg -> err "%s" msg)
    | exception Invalid_argument msg -> err "%s" msg
  in
  let* pipeline =
    match
      Pipeline.make ~input
        (List.map
           (fun s -> { Pipeline.work = s.stage_work; output = s.stage_output })
           raw.raw_stages)
    with
    | p -> Ok p
    | exception Invalid_argument msg -> err "%s" msg
  in
  Ok (Instance.make pipeline platform)

let parse text =
  match parse_raw text with
  | Error e -> Error (format_error e)
  | Ok raw -> (
      match build raw with
      | Error e -> Error (format_error e)
      | Ok instance -> Ok instance)

let parse_file path =
  match In_channel.with_open_text path In_channel.input_all with
  | text -> parse text
  | exception Sys_error msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let to_string (instance : Instance.t) =
  let buf = Buffer.create 256 in
  let pipeline = instance.Instance.pipeline in
  let platform = instance.Instance.platform in
  Buffer.add_string buf (Printf.sprintf "input %.17g\n" (Pipeline.delta pipeline 0));
  List.iter
    (fun s ->
      Buffer.add_string buf
        (Printf.sprintf "stage %.17g %.17g\n" s.Pipeline.work s.Pipeline.output))
    (Pipeline.stages pipeline);
  let m = Platform.size platform in
  for u = 0 to m - 1 do
    Buffer.add_string buf
      (Printf.sprintf "proc %.17g %.17g\n" (Platform.speed platform u)
         (Platform.failure platform u))
  done;
  let endpoints =
    (Platform.Pin :: List.map (fun u -> Platform.Proc u) (Platform.procs platform))
    @ [ Platform.Pout ]
  in
  let name = function
    | Platform.Pin -> "in"
    | Platform.Pout -> "out"
    | Platform.Proc u -> string_of_int u
  in
  let rec pairs = function
    | [] -> ()
    | a :: tl ->
        List.iter
          (fun bb ->
            Buffer.add_string buf
              (Printf.sprintf "link %s %s %.17g\n" (name a) (name bb)
                 (Platform.bandwidth platform a bb)))
          tl;
        pairs tl
  in
  pairs endpoints;
  Buffer.contents buf
