(** Line-oriented text format for problem instances.

    Grammar (one directive per line, ['#'] starts a comment):
    {v
    input <delta0>
    stage <work> <output>        # repeated, pipeline order
    proc <speed> <failure>       # repeated, processors 0,1,...
    link default <bandwidth>
    link <a> <b> <bandwidth>     # a, b: "in", "out", or processor index
    v}
    [link] directives are symmetric.  A [link default] is required unless
    every endpoint pair is listed explicitly.

    Parsing is split in two layers so static analysis can inspect inputs
    that would not survive {!Platform.make}:

    - {!parse_raw} performs only syntactic checks and returns every
      directive together with its source {!Relpipe_util.Loc.span};
    - {!build} applies the semantic checks (directive presence, endpoint
      ranges, value domains) and constructs the instance.

    {!parse} composes the two and renders errors as ["line:col: message"]
    strings. *)

(** {1 Raw layer} *)

type raw_endpoint = Rin | Rout | Rproc of int
    (** An endpoint as written; [Rproc] indices are not range-checked
        here. *)

type raw_stage = {
  stage_work : float;
  stage_output : float;
  stage_span : Relpipe_util.Loc.span;
}

type raw_proc = {
  proc_speed : float;
  proc_failure : float;
  proc_span : Relpipe_util.Loc.span;
}

type raw_link = {
  link_a : raw_endpoint;
  link_b : raw_endpoint;
  link_bw : float;
  link_span : Relpipe_util.Loc.span;
}

type raw = {
  raw_input : (float * Relpipe_util.Loc.span) option;
  raw_stages : raw_stage list;  (** pipeline order *)
  raw_procs : raw_proc list;  (** processor 0, 1, ... *)
  raw_default_bw : (float * Relpipe_util.Loc.span) option;
  raw_links : raw_link list;  (** declaration order *)
}

type error = { message : string; span : Relpipe_util.Loc.span option }

val parse_raw : string -> (raw, error) result
(** Tokenize and collect directives; fails only on malformed syntax
    (unknown directive, wrong arity, unparsable number).  Value-domain
    problems (negative speeds, probabilities outside [0,1], missing
    links, ...) are left to {!build} and to the [Relpipe_analysis] lint
    passes, which can report all of them at once with spans. *)

val endpoint_of_raw : m:int -> raw_endpoint -> (Platform.endpoint, string) result
(** Range-check a raw endpoint against a platform of [m] processors. *)

val build : raw -> (Instance.t, error) result
(** Semantic validation and construction. *)

val format_error : error -> string
(** ["line:col: message"], or just the message for spanless errors. *)

(** {1 Instance layer} *)

val parse : string -> (Instance.t, string) result
(** [parse text] is {!parse_raw} followed by {!build}; error strings carry
    the source position when one is known. *)

val parse_file : string -> (Instance.t, string) result
(** Read and {!parse} a file; IO failures are reported as [Error]. *)

val to_string : Instance.t -> string
(** Canonical rendering; [parse (to_string i)] round-trips the instance up
    to float formatting. *)
