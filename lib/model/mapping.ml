type interval = { first : int; last : int; procs : int list }

type t = interval list

let validate ~n ~m intervals =
  let err fmt = Format.kasprintf (fun s -> Error s) fmt in
  if n <= 0 then err "pipeline length must be positive"
  else if intervals = [] then err "a mapping needs at least one interval"
  else begin
    let rec check_cover expected = function
      | [] -> if expected = n + 1 then Ok () else err "intervals do not cover the pipeline"
      | iv :: tl ->
          if iv.first <> expected then
            err "interval [%d,%d] does not start at stage %d" iv.first iv.last expected
          else if iv.last < iv.first || iv.last > n then
            err "interval [%d,%d] has an invalid end" iv.first iv.last
          else check_cover (iv.last + 1) tl
    in
    let check_procs () =
      let rec go seen = function
        | [] -> Ok ()
        | iv :: tl ->
            let sorted = List.sort_uniq Int.compare iv.procs in
            if iv.procs = [] then err "interval [%d,%d] has no processor" iv.first iv.last
            else if List.length sorted <> List.length iv.procs then
              err "interval [%d,%d] lists a processor twice" iv.first iv.last
            else if List.exists (fun u -> u < 0 || u >= m) sorted then
              err "interval [%d,%d] uses a processor outside 0..%d" iv.first iv.last (m - 1)
            else if List.exists (fun u -> List.mem u seen) sorted then
              err "a processor is assigned to two intervals"
            else go (List.rev_append sorted seen) tl
      in
      go [] intervals
    in
    match check_cover 1 intervals with
    | Error _ as e -> e
    | Ok () -> (
        match check_procs () with
        | Error _ as e -> e
        | Ok () ->
            Ok
              (List.map
                 (fun iv -> { iv with procs = List.sort Int.compare iv.procs })
                 intervals))
  end

let make ~n ~m intervals =
  match validate ~n ~m intervals with
  | Ok t -> t
  | Error msg -> invalid_arg ("Mapping.make: " ^ msg)

let single_interval ~n ~m procs = make ~n ~m [ { first = 1; last = n; procs } ]

let one_to_one ~n ~m procs =
  if List.length procs <> n then
    invalid_arg "Mapping.one_to_one: need exactly one processor per stage";
  let intervals =
    List.mapi (fun i u -> { first = i + 1; last = i + 1; procs = [ u ] }) procs
  in
  make ~n ~m intervals

let intervals t = t
let num_intervals t = List.length t

let replication t j =
  match List.nth_opt t j with
  | Some iv -> List.length iv.procs
  | None -> invalid_arg "Mapping.replication: interval index out of range"

let interval_of_stage t k =
  match List.find_opt (fun iv -> iv.first <= k && k <= iv.last) t with
  | Some iv -> iv
  | None -> invalid_arg "Mapping.interval_of_stage: stage out of range"

let used_procs t = List.sort Int.compare (List.concat_map (fun iv -> iv.procs) t)

let equal a b =
  List.length a = List.length b
  && List.for_all2
       (fun x y -> x.first = y.first && x.last = y.last && x.procs = y.procs)
       a b

let pp ppf t =
  let pp_iv ppf iv =
    Format.fprintf ppf "[S%d..S%d]->{%a}" iv.first iv.last
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
         (fun ppf u -> Format.fprintf ppf "P%d" u))
      iv.procs
  in
  Format.fprintf ppf "@[<h>%a@]"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " ") pp_iv)
    t
