(** The evolving platform a churn scenario runs against.

    A world is an immutable snapshot: the (fixed) pipeline plus dense
    per-processor attribute arrays and a stable identity per processor
    ([id]) that survives renumbering.  {!apply} returns the perturbed
    world together with the index translation the warm solver needs:
    [prev_of.(u)] is processor [u]'s dense index {e before} the event
    ([-1] for a fresh join).  Deaths compact the index space preserving
    relative order and joins append, so [prev_of] is always strictly
    increasing on its defined entries — the discipline
    {!Relpipe_core.Interval_exact.Dp.solve} requires. *)

open Relpipe_model

type t

val of_instance : Instance.t -> t
(** Snapshot an instance; processor [u] gets stable id [u]. *)

val size : t -> int
(** Number of (alive) processors. *)

val id : t -> int -> int
(** Stable identity of the processor at a dense index. *)

val platform : t -> Platform.t
val instance : t -> Instance.t
(** Rebuild the model objects (bandwidths kept symmetric). *)

val apply : t -> Event.t -> t * int array
(** [(world', prev_of)] after one event.
    @raise Invalid_argument on out-of-range processors, non-positive
    factors/attributes, or killing the last processor. *)

val describe : t -> Event.t -> string
(** Render an event {e against the world it fires on}, using stable
    processor ids (e.g. ["death p3"], ["speed p1 x1.25"],
    ["join p7 s=4 fp=0.05 bw=2"]). *)
