(** Seeded churn scenario generation.

    Every event draws from its own SplitMix64 sub-stream
    ({!Relpipe_util.Rng.derive} with the event index as salt, the same
    discipline as the fuzzer's oracle registry), so a trace is a pure
    function of [(seed, world)] — replayable from a single master seed,
    and stable under changes to how {e other} events consume randomness.

    The [lib/sim] models feed the generator: a slot is a breakdown when
    the paper's Bernoulli failure sample
    ({!Relpipe_sim.Failure_inject.sample_seeded}) kills somebody (and at
    least three processors remain), and the victim is the sampled-dead
    processor with the earliest exponential failure instant
    ({!Relpipe_sim.Lifetime.failure_times} with rates from
    {!Relpipe_model.Failure_rate.rate_of_fp} over [mission]).  Other
    slots split between joins (while below {!max_procs}), speed drifts
    and bandwidth drifts. *)

val max_procs : int
(** Join cap, [= Relpipe_core.Interval_exact.max_procs]. *)

val trace :
  ?mission:float ->
  ?cap:int ->
  seed:int ->
  count:int ->
  World.t ->
  Event.t list
(** [count] events, each valid against the world produced by its
    predecessors ([mission] defaults to [1000.]; [cap] — default
    {!max_procs} — stops joins beyond that platform size, letting callers
    with cost ceilings, e.g. the fuzz oracle, bound the search space).
    @raise Invalid_argument on a negative count, non-positive mission, or
    cap outside [\[1, max_procs\]]. *)
