open Relpipe_model
module Rng = Relpipe_util.Rng
module Failure_inject = Relpipe_sim.Failure_inject
module Lifetime = Relpipe_sim.Lifetime

let max_procs = Relpipe_core.Interval_exact.max_procs

(* A fresh positive sub-seed drawn from the event's own stream, handed to
   the seeded sim helpers (which re-derive their private sub-streams). *)
let sub_seed rng = Int64.to_int (Rng.int64 rng) land max_int

let gen_one ~mission ~cap rng world =
  let platform = World.platform world in
  let m = World.size world in
  (* The paper's Bernoulli failure model decides whether this slot is a
     breakdown at all... *)
  let pattern = Failure_inject.sample_seeded ~seed:(sub_seed rng) platform in
  let any_dead = Array.exists not pattern in
  if m >= 3 && any_dead && Rng.bool rng then begin
    (* ...and the exponential-lifetime refinement picks the victim: the
       sampled-dead processor with the earliest failure instant. *)
    let rates =
      Array.init m (fun u ->
          let r =
            Failure_rate.rate_of_fp ~fp:(Platform.failure platform u) ~mission
          in
          if Float.is_finite r then r else 1e12)
    in
    let times = Lifetime.failure_times ~seed:(sub_seed rng) ~rates in
    let victim = ref (-1) in
    Array.iteri
      (fun u alive ->
        if (not alive) && (!victim < 0 || times.(u) < times.(!victim)) then
          victim := u)
      pattern;
    Event.Death !victim
  end
  else begin
    let roll = Rng.int rng 10 in
    if roll < 2 && m < cap then
      let speed = Rng.float_range rng 1.0 10.0 in
      let failure = Rng.float_range rng 0.01 0.3 in
      let bandwidth = Rng.float_range rng 1.0 10.0 in
      Event.Join { speed; failure; bandwidth }
    else if roll < 6 || m < 2 then
      Event.Speed_drift
        { proc = Rng.int rng m; factor = Rng.float_range rng 0.6 1.7 }
    else begin
      let factor = Rng.float_range rng 0.6 1.7 in
      let link =
        match Rng.int rng 4 with
        | 0 -> Event.In (Rng.int rng m)
        | 1 -> Event.Out (Rng.int rng m)
        | _ ->
            let u = Rng.int rng m in
            let v = Rng.int rng (m - 1) in
            Event.Between (u, (if v >= u then v + 1 else v))
      in
      Event.Bandwidth_drift { link; factor }
    end
  end

let trace ?(mission = 1000.0) ?(cap = max_procs) ~seed ~count world =
  if count < 0 then invalid_arg "Churn.Driver.trace: count must be non-negative";
  if mission <= 0.0 || not (Float.is_finite mission) then
    invalid_arg "Churn.Driver.trace: mission must be positive";
  if cap < 1 || cap > max_procs then
    invalid_arg "Churn.Driver.trace: cap must lie in [1, max_procs]";
  let rec go i world acc =
    if i >= count then List.rev acc
    else begin
      (* Per-event sub-stream: event [i] draws only from its own derived
         generator, so a trace is a pure function of (seed, world). *)
      let rng = Rng.derive ~seed ~salt:(i + 1) in
      let ev = gen_one ~mission ~cap rng world in
      let world', _ = World.apply world ev in
      go (i + 1) world' (ev :: acc)
    end
  in
  go 0 world []
