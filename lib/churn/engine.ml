open Relpipe_model
module Interval_exact = Relpipe_core.Interval_exact
module Bb = Relpipe_core.Bb
module Solution = Relpipe_core.Solution
module Obs = Relpipe_obs.Obs
module Clock = Relpipe_obs.Clock
module Pool = Relpipe_service.Pool

type step = {
  index : int;
  event : Event.t option;
  label : string;
  world : World.t;
  dp : (float * Mapping.t) option;
  solution : Solution.t option;
  reuse : Interval_exact.Dp.reuse;
  bb_stats : Bb.stats;
  warm_bound : bool;
  moved_stages : int;
  ttr_ns : int;
}

let bits_eq a b = Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)

let equal_dp a b =
  match (a, b) with
  | None, None -> true
  | Some (l1, m1), Some (l2, m2) -> bits_eq l1 l2 && Mapping.equal m1 m2
  | (None | Some _), _ -> false

let equal_solution a b =
  match (a, b) with
  | None, None -> true
  | Some s1, Some s2 ->
      Mapping.equal s1.Solution.mapping s2.Solution.mapping
      && bits_eq s1.Solution.evaluation.Instance.latency
           s2.Solution.evaluation.Instance.latency
      && bits_eq s1.Solution.evaluation.Instance.failure
           s2.Solution.evaluation.Instance.failure
  | (None | Some _), _ -> false

(* Mapping stability, counted per stage over {e stable} processor ids so a
   death's renumbering is not itself movement: stage [s] moved when the
   identity set of its replicas changed. *)
let stage_ids world mapping s =
  let iv = Mapping.interval_of_stage mapping s in
  List.sort Int.compare (List.map (World.id world) iv.Mapping.procs)

let moved_stages ~n ~prev_world ~prev ~world ~cur =
  match (prev, cur) with
  | None, None -> 0
  | Some _, None | None, Some _ -> n
  | Some pm, Some cm ->
      let moved = ref 0 in
      for s = 1 to n do
        if
          not
            (List.equal Int.equal (stage_ids prev_world pm s)
               (stage_ids world cm s))
        then incr moved
      done;
      !moved

(* The warm B&B bound: the previous solution translated to the new index
   space, when every replica survived and it still meets the threshold.
   Its evaluated objective, inflated by a few ulps of the eps-tolerant
   acceptance slack in [Instance.better], upper-bounds the optimum, so
   [Bb.solve ~prune_above] stays bit-identical to an unbounded solve. *)
let warm_bound ~objective ~instance ~prev_solution ~prev_of =
  match prev_solution with
  | None -> None
  | Some s -> (
      let m = Array.length prev_of in
      let cur_of_prev = Hashtbl.create 16 in
      Array.iteri
        (fun u p -> if p >= 0 then Hashtbl.replace cur_of_prev p u)
        prev_of;
      let translate iv =
        let procs =
          List.filter_map
            (fun p -> Hashtbl.find_opt cur_of_prev p)
            iv.Mapping.procs
        in
        if List.compare_lengths procs iv.Mapping.procs <> 0 then None
        else Some { iv with Mapping.procs }
      in
      let intervals = Mapping.intervals s.Solution.mapping in
      let translated = List.filter_map translate intervals in
      if List.compare_lengths translated intervals <> 0 then None
      else
        let n = Pipeline.length instance.Instance.pipeline in
        match Mapping.make ~n ~m translated with
        | exception Invalid_argument _ -> None
        | mapping ->
            let evaluation = Instance.evaluate instance mapping in
            if Instance.feasible objective evaluation then
              (* The slack lives in Core.Bb so the warm start and the
                 parallel probe's shared incumbent can never drift apart
                 (same [prune_slack] constant, same inflation). *)
              Some
                (Bb.inflate_bound
                   (Instance.objective_value objective evaluation))
            else None)

let now obs =
  match obs with None -> 0 | Some o -> Clock.now_ns o.Obs.clock

let solve_one ~obs ~objective ?warm ?prune_above instance =
  let t0 = now obs in
  let dp, state, reuse =
    Obs.span obs "churn.solve.dp" (fun () ->
        Interval_exact.Dp.solve ?warm instance)
  in
  let solution, bb_stats =
    Obs.span obs "churn.solve.bb" (fun () ->
        Bb.solve_with_stats ?prune_above instance objective)
  in
  let t1 = now obs in
  (dp, state, reuse, solution, bb_stats, t1 - t0)

let record ~obs step =
  Obs.incr obs "churn.steps";
  (match step.event with
  | None -> ()
  | Some ev ->
      Obs.incr obs ("churn.events." ^ Event.kind ev);
      Obs.observe obs "churn.ttr_ns" (float_of_int step.ttr_ns);
      Obs.add obs "churn.moved_stages" step.moved_stages);
  Obs.add obs "churn.dp.cells_reused" step.reuse.Interval_exact.Dp.cells_reused;
  if step.warm_bound then Obs.incr obs "churn.bb.warm_bounds"

let run ?obs ?(cold = false) ~objective world events =
  let n = Pipeline.length (World.instance world).Instance.pipeline in
  Obs.span obs "churn.run" (fun () ->
      let dp, state, reuse, solution, bb_stats, ttr =
        solve_one ~obs ~objective (World.instance world)
      in
      let step0 =
        {
          index = 0;
          event = None;
          label = "-";
          world;
          dp;
          solution;
          reuse;
          bb_stats;
          warm_bound = false;
          moved_stages = 0;
          ttr_ns = ttr;
        }
      in
      record ~obs step0;
      let rec go idx world state prev_solution acc = function
        | [] -> List.rev acc
        | ev :: rest ->
            let label = World.describe world ev in
            let world', prev_of = World.apply world ev in
            let instance = World.instance world' in
            let warm = if cold then None else Some (state, prev_of) in
            let prune_above =
              if cold then None
              else warm_bound ~objective ~instance ~prev_solution ~prev_of
            in
            let dp, state', reuse, solution, bb_stats, ttr =
              solve_one ~obs ~objective ?warm ?prune_above instance
            in
            let moved =
              moved_stages ~n ~prev_world:world ~prev:
                (Option.map (fun s -> s.Solution.mapping) prev_solution)
                ~world:world'
                ~cur:(Option.map (fun s -> s.Solution.mapping) solution)
            in
            let step =
              {
                index = idx;
                event = Some ev;
                label;
                world = world';
                dp;
                solution;
                reuse;
                bb_stats;
                warm_bound = Option.is_some prune_above;
                moved_stages = moved;
                ttr_ns = ttr;
              }
            in
            record ~obs step;
            go (idx + 1) world' state' solution (step :: acc) rest
      in
      step0 :: go 1 world state solution [] events)

let verify ?obs ~workers ~objective steps =
  let jobs = Array.of_list steps in
  let results, _stats =
    Pool.map ?obs ~workers
      (fun step ->
        let instance = World.instance step.world in
        let dp, _, _ = Interval_exact.Dp.solve instance in
        let solution = Bb.solve instance objective in
        equal_dp dp step.dp && equal_solution solution step.solution)
      jobs
  in
  Array.for_all (fun ok -> ok) results
