open Relpipe_model

type t = {
  pipeline : Pipeline.t;
  next_id : int;
  ids : int array;
  speeds : float array;
  failures : float array;
  bw_in : float array;
  bw_out : float array;
  bw_pp : float array;  (* m*m, diagonal unused, kept symmetric *)
  bw_io : float;  (* Pin <-> Pout *)
}

let size w = Array.length w.speeds
let id w u = w.ids.(u)

let of_instance { Instance.pipeline; platform } =
  let m = Platform.size platform in
  let bw_pp = Array.make (m * m) 0.0 in
  for u = 0 to m - 1 do
    for v = 0 to m - 1 do
      if u <> v then
        bw_pp.((u * m) + v) <-
          Platform.bandwidth platform (Platform.Proc u) (Platform.Proc v)
    done
  done;
  {
    pipeline;
    next_id = m;
    ids = Array.init m (fun u -> u);
    speeds = Array.init m (Platform.speed platform);
    failures = Array.init m (Platform.failure platform);
    bw_in =
      Array.init m (fun u ->
          Platform.bandwidth platform Platform.Pin (Platform.Proc u));
    bw_out =
      Array.init m (fun u ->
          Platform.bandwidth platform (Platform.Proc u) Platform.Pout);
    bw_pp;
    bw_io = Platform.bandwidth platform Platform.Pin Platform.Pout;
  }

let platform w =
  let m = size w in
  Platform.make ~speeds:w.speeds ~failures:w.failures
    ~bandwidth:(fun a b ->
      match (a, b) with
      | Platform.Pin, Platform.Proc u | Platform.Proc u, Platform.Pin ->
          w.bw_in.(u)
      | Platform.Proc u, Platform.Pout | Platform.Pout, Platform.Proc u ->
          w.bw_out.(u)
      | Platform.Proc u, Platform.Proc v -> w.bw_pp.((u * m) + v)
      | Platform.Pin, Platform.Pout | Platform.Pout, Platform.Pin -> w.bw_io
      | Platform.Pin, Platform.Pin | Platform.Pout, Platform.Pout -> 1.0)

let instance w = Instance.make w.pipeline (platform w)

let check_proc w u ctx =
  if u < 0 || u >= size w then
    invalid_arg (Printf.sprintf "Churn.World.apply: %s out of range" ctx)

let check_factor factor =
  if not (Float.is_finite factor && factor > 0.0) then
    invalid_arg "Churn.World.apply: factor must be finite and positive"

let drop a k = Array.init (Array.length a - 1) (fun i -> if i < k then a.(i) else a.(i + 1))
let push a x = Array.append a [| x |]

let identity_prev_of m = Array.init m (fun u -> u)

let apply w event =
  let m = size w in
  match event with
  | Event.Death k ->
      check_proc w k "dead processor";
      if m < 2 then invalid_arg "Churn.World.apply: cannot kill the last processor";
      let bw_pp = Array.make ((m - 1) * (m - 1)) 0.0 in
      for u = 0 to m - 2 do
        for v = 0 to m - 2 do
          if u <> v then begin
            let pu = if u < k then u else u + 1
            and pv = if v < k then v else v + 1 in
            bw_pp.((u * (m - 1)) + v) <- w.bw_pp.((pu * m) + pv)
          end
        done
      done;
      ( {
          w with
          ids = drop w.ids k;
          speeds = drop w.speeds k;
          failures = drop w.failures k;
          bw_in = drop w.bw_in k;
          bw_out = drop w.bw_out k;
          bw_pp;
        },
        Array.init (m - 1) (fun u -> if u < k then u else u + 1) )
  | Event.Speed_drift { proc; factor } ->
      check_proc w proc "drifting processor";
      check_factor factor;
      let speeds = Array.copy w.speeds in
      speeds.(proc) <- speeds.(proc) *. factor;
      if not (Float.is_finite speeds.(proc) && speeds.(proc) > 0.0) then
        invalid_arg "Churn.World.apply: drifted speed must stay positive";
      ({ w with speeds }, identity_prev_of m)
  | Event.Bandwidth_drift { link; factor } ->
      check_factor factor;
      let w' =
        match link with
        | Event.In u ->
            check_proc w u "input-link endpoint";
            let bw_in = Array.copy w.bw_in in
            bw_in.(u) <- bw_in.(u) *. factor;
            { w with bw_in }
        | Event.Out u ->
            check_proc w u "output-link endpoint";
            let bw_out = Array.copy w.bw_out in
            bw_out.(u) <- bw_out.(u) *. factor;
            { w with bw_out }
        | Event.Between (u, v) ->
            check_proc w u "link endpoint";
            check_proc w v "link endpoint";
            if u = v then invalid_arg "Churn.World.apply: no self link";
            let bw_pp = Array.copy w.bw_pp in
            bw_pp.((u * m) + v) <- bw_pp.((u * m) + v) *. factor;
            bw_pp.((v * m) + u) <- bw_pp.((u * m) + v);
            { w with bw_pp }
      in
      (w', identity_prev_of m)
  | Event.Join { speed; failure; bandwidth } ->
      if not (Float.is_finite speed && speed > 0.0) then
        invalid_arg "Churn.World.apply: joining speed must be positive";
      if not (Float.is_finite bandwidth && bandwidth > 0.0) then
        invalid_arg "Churn.World.apply: joining bandwidth must be positive";
      if failure < 0.0 || failure > 1.0 || not (Float.is_finite failure) then
        invalid_arg "Churn.World.apply: joining failure must lie in [0,1]";
      let m' = m + 1 in
      let bw_pp = Array.make (m' * m') 0.0 in
      for u = 0 to m - 1 do
        for v = 0 to m - 1 do
          if u <> v then bw_pp.((u * m') + v) <- w.bw_pp.((u * m) + v)
        done
      done;
      for u = 0 to m - 1 do
        bw_pp.((u * m') + m) <- bandwidth;
        bw_pp.((m * m') + u) <- bandwidth
      done;
      ( {
          w with
          next_id = w.next_id + 1;
          ids = push w.ids w.next_id;
          speeds = push w.speeds speed;
          failures = push w.failures failure;
          bw_in = push w.bw_in bandwidth;
          bw_out = push w.bw_out bandwidth;
          bw_pp;
        },
        Array.init m' (fun u -> if u = m then -1 else u) )

let describe w event =
  match event with
  | Event.Death k -> Printf.sprintf "death p%d" (id w k)
  | Event.Speed_drift { proc; factor } ->
      Printf.sprintf "speed p%d x%.6g" (id w proc) factor
  | Event.Bandwidth_drift { link; factor } -> (
      match link with
      | Event.In u -> Printf.sprintf "bw in-p%d x%.6g" (id w u) factor
      | Event.Out u -> Printf.sprintf "bw p%d-out x%.6g" (id w u) factor
      | Event.Between (u, v) ->
          Printf.sprintf "bw p%d-p%d x%.6g" (id w u) (id w v) factor)
  | Event.Join { speed; failure; bandwidth } ->
      Printf.sprintf "join p%d s=%.6g fp=%.6g bw=%.6g" w.next_id speed failure
        bandwidth
