(** The incremental re-mapping engine.

    {!run} solves the initial world, then replays a churn trace: after
    every event the interval DP warm-starts from its previous table
    ({!Relpipe_core.Interval_exact.Dp}) and the branch-and-bound search
    reuses the surviving previous solution as a static prune bound
    ({!Relpipe_core.Bb.solve} [~prune_above]).  The contract — pinned by
    {!verify}, [test/test_churn.ml] and the [churn-incremental] fuzz
    oracle — is that every warm answer is {e byte-identical} to a cold
    solve of the same world: warm-starting buys time, never a different
    mapping.

    Per step the engine records (when given an [obs]) the [churn.steps]
    and [churn.events.<kind>] counters, the [churn.ttr_ns] time-to-repair
    histogram, the [churn.moved_stages] stability counter, the
    [churn.dp.cells_reused] counter and the [churn.bb.warm_bounds]
    counter, under the [churn.run] / [churn.solve.dp] / [churn.solve.bb]
    spans.  Time-to-repair is measured through the [obs] clock, so runs
    under a virtual clock are deterministic. *)

open Relpipe_model

type step = {
  index : int;  (** 0 for the initial solve, then the 1-based event index *)
  event : Event.t option;  (** [None] for the initial solve *)
  label : string;  (** {!World.describe} of the event, ["-"] initially *)
  world : World.t;  (** the world {e after} the event *)
  dp : (float * Mapping.t) option;
      (** optimal unreplicated interval mapping (latency) *)
  solution : Relpipe_core.Solution.t option;
      (** branch-and-bound optimum for the objective, [None] if infeasible *)
  reuse : Relpipe_core.Interval_exact.Dp.reuse;
      (** DP cells carried over from the previous step *)
  bb_stats : Relpipe_core.Bb.stats;
  warm_bound : bool;  (** the previous solution survived as a prune bound *)
  moved_stages : int;
      (** stages whose replica {e identity} set changed vs the previous
          step's solution (stable ids, so renumbering is not movement) *)
  ttr_ns : int;  (** time-to-repair: both solver legs, via the obs clock *)
}

val run :
  ?obs:Relpipe_obs.Obs.t ->
  ?cold:bool ->
  objective:Instance.objective ->
  World.t ->
  Event.t list ->
  step list
(** The initial solve plus one step per event.  With [~cold:true] every
    step solves from scratch — same [step] shape, zero reuse, no bounds;
    all solution-derived fields are identical to the warm run's. *)

val verify :
  ?obs:Relpipe_obs.Obs.t ->
  workers:int ->
  objective:Instance.objective ->
  step list ->
  bool
(** Cold-solve every step's world (in parallel on [workers] domains —
    each step depends only on the trace, not on warm results) and check
    the recorded answers bit-for-bit. *)

(**/**)

val equal_dp :
  (float * Mapping.t) option -> (float * Mapping.t) option -> bool

val equal_solution :
  Relpipe_core.Solution.t option -> Relpipe_core.Solution.t option -> bool
