type link = In of int | Out of int | Between of int * int

type t =
  | Death of int
  | Speed_drift of { proc : int; factor : float }
  | Bandwidth_drift of { link : link; factor : float }
  | Join of { speed : float; failure : float; bandwidth : float }

let link_equal a b =
  match (a, b) with
  | In u, In v | Out u, Out v -> u = v
  | Between (a1, a2), Between (b1, b2) -> a1 = b1 && a2 = b2
  | (In _ | Out _ | Between _), _ -> false

let equal a b =
  match (a, b) with
  | Death u, Death v -> u = v
  | Speed_drift a, Speed_drift b ->
      a.proc = b.proc && Float.equal a.factor b.factor
  | Bandwidth_drift a, Bandwidth_drift b ->
      link_equal a.link b.link && Float.equal a.factor b.factor
  | Join a, Join b ->
      Float.equal a.speed b.speed
      && Float.equal a.failure b.failure
      && Float.equal a.bandwidth b.bandwidth
  | (Death _ | Speed_drift _ | Bandwidth_drift _ | Join _), _ -> false

let kind = function
  | Death _ -> "death"
  | Speed_drift _ -> "speed"
  | Bandwidth_drift _ -> "bandwidth"
  | Join _ -> "join"
