(** The churn event vocabulary.

    Processors are named by their {e dense index at the moment the event
    fires} (the driver generates events against the evolving world;
    {!World.describe} renders them with stable identities).  A death
    compacts the index space — survivors keep their relative order — and
    a join appends at the end; this ordering discipline is what lets the
    warm DP translate its previous table (see
    {!Relpipe_core.Interval_exact.Dp}). *)

type link =
  | In of int  (** the [Pin -> u] input link *)
  | Out of int  (** the [u -> Pout] output link *)
  | Between of int * int  (** the bidirectional [u <-> v] link *)

type t =
  | Death of int  (** processor disappears; indices above it shift down *)
  | Speed_drift of { proc : int; factor : float }
      (** speed multiplied by [factor] (> 0; [1.0] is a no-op) *)
  | Bandwidth_drift of { link : link; factor : float }
      (** link bandwidth multiplied by [factor] (> 0) *)
  | Join of { speed : float; failure : float; bandwidth : float }
      (** a new processor appended at the end, all its links at
          [bandwidth] *)

val equal : t -> t -> bool
(** Structural equality (bit-exact on the float payloads). *)

val kind : t -> string
(** ["death" | "speed" | "bandwidth" | "join"] — also the suffixes of the
    [churn.events.*] metric names. *)
