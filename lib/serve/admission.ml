(* Bounded multi-producer / single-consumer admission queue.

   Producers (per-session reader threads) block in [push] while the
   queue is at capacity — that stall propagates to the client socket,
   which is exactly the backpressure contract: a flood of requests slows
   its senders down, never the solver pool.  The single consumer (the
   dispatcher) takes everything pending at once with [drain], forming
   one dispatch batch ("tick") per wakeup. *)

type 'a t = {
  q : 'a Queue.t;
  mu : Mutex.t;
  not_empty : Condition.t;
  not_full : Condition.t;
  capacity : int;
  mutable closed : bool;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Admission.create: capacity must be >= 1";
  {
    q = Queue.create ();
    mu = Mutex.create ();
    not_empty = Condition.create ();
    not_full = Condition.create ();
    capacity;
    closed = false;
  }

let capacity t = t.capacity

let push t x =
  Mutex.lock t.mu;
  while Queue.length t.q >= t.capacity && not t.closed do
    Condition.wait t.not_full t.mu
  done;
  let accepted = not t.closed in
  if accepted then begin
    Queue.push x t.q;
    Condition.signal t.not_empty
  end;
  Mutex.unlock t.mu;
  accepted

let drain t =
  Mutex.lock t.mu;
  while Queue.is_empty t.q && not t.closed do
    Condition.wait t.not_empty t.mu
  done;
  let items = List.of_seq (Queue.to_seq t.q) in
  Queue.clear t.q;
  Condition.broadcast t.not_full;
  Mutex.unlock t.mu;
  items

let close t =
  Mutex.lock t.mu;
  t.closed <- true;
  Condition.broadcast t.not_empty;
  Condition.broadcast t.not_full;
  Mutex.unlock t.mu

let length t =
  Mutex.lock t.mu;
  let n = Queue.length t.q in
  Mutex.unlock t.mu;
  n
