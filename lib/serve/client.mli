(** A minimal blocking client for the serve protocol ([relpipe call]
    and the tests).

    The server answers every inbound line exactly once, in order, so a
    lockstep {!call} needs no concurrency; deep pipelining (many
    {!send}s before the {!recv}s) should read from a separate thread to
    keep both socket buffers draining. *)

type t

val connect : [ `Unix of string | `Tcp of string * int ] -> t
(** @raise Unix.Unix_error when the endpoint refuses;
    @raise Invalid_argument on an unresolvable host. *)

val send : t -> string -> unit
val recv : t -> string option
(** Next reply line; [None] once the server closed the stream. *)

val call : t -> string -> string option
(** [send] then [recv]. *)

val sent : t -> int
val received : t -> int

val finish_sending : t -> unit
(** Half-close: tells the server this session is done (its reader sees
    EOF and the session flushes); replies can still be {!recv}'d. *)

val close : t -> unit
