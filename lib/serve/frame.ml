(* Per-session line framing over a file descriptor.

   The protocol is JSONL, so framing is newline-delimited with a
   hard per-line size guard: a client that streams an unbounded line
   is cut off (Too_long) before it can balloon the session buffer. *)

let default_max_line = 16 * 1024 * 1024

type reader = {
  fd : Unix.file_descr;
  buf : Buffer.t;
  chunk : Bytes.t;
  max_line : int;
  (* Bytes read past the last returned line, scanned-from offset. *)
  mutable scanned : int;
  mutable eof : bool;
}

type read_result = Line of string | Eof | Too_long

let reader ?(max_line = default_max_line) fd =
  { fd; buf = Buffer.create 4096; chunk = Bytes.create 65536; max_line; scanned = 0; eof = false }

let take_line r newline_at =
  let all = Buffer.contents r.buf in
  let line = String.sub all 0 newline_at in
  let rest = String.sub all (newline_at + 1) (String.length all - newline_at - 1) in
  Buffer.clear r.buf;
  Buffer.add_string r.buf rest;
  r.scanned <- 0;
  (* Tolerate CRLF clients. *)
  let line =
    let n = String.length line in
    if n > 0 && line.[n - 1] = '\r' then String.sub line 0 (n - 1) else line
  in
  Line line

let rec read_line r =
  let pending = Buffer.contents r.buf in
  match String.index_from_opt pending r.scanned '\n' with
  | Some i -> take_line r i
  | None ->
      r.scanned <- String.length pending;
      if r.scanned > r.max_line then Too_long
      else if r.eof then
        if r.scanned = 0 then Eof
        else begin
          (* A final unterminated line still counts. *)
          Buffer.clear r.buf;
          r.scanned <- 0;
          Line pending
        end
      else begin
        (match Unix.read r.fd r.chunk 0 (Bytes.length r.chunk) with
        | 0 -> r.eof <- true
        | n -> Buffer.add_subbytes r.buf r.chunk 0 n
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
        | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE | Unix.EBADF), _, _)
          ->
            r.eof <- true);
        read_line r
      end

let write_line fd line =
  let payload = Bytes.of_string (line ^ "\n") in
  let len = Bytes.length payload in
  let rec go off =
    if off < len then
      match Unix.write fd payload off (len - off) with
      | n -> go (off + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0
