(** Bounded multi-producer / single-consumer queue between session
    readers and the dispatcher.

    [push] blocks while the queue is at capacity, so the stall reaches
    the flooding client's socket (backpressure) instead of the solver
    pool; [drain] hands the single consumer everything pending in
    admission order — one dispatch batch per wakeup.  After {!close},
    [push] returns [false] immediately and [drain] returns whatever is
    left (then [[]] forever). *)

type 'a t

val create : capacity:int -> 'a t
(** @raise Invalid_argument when [capacity < 1]. *)

val capacity : 'a t -> int

val push : 'a t -> 'a -> bool
(** Blocks while full; [false] iff the queue was closed (the item was
    not enqueued). *)

val drain : 'a t -> 'a list
(** Blocks until at least one item is pending or the queue is closed;
    returns all pending items in arrival order ([[]] only when closed
    and empty). *)

val close : 'a t -> unit

val length : 'a t -> int
