(* Replaying a recorded .session transcript through the tick processor.

   The transcript pins the dispatch-batch boundaries, so the replay
   walks tick by tick through a fresh Core and collects the reply
   stream; because Core + Engine are deterministic per tick, the result
   is byte-identical for every worker count. *)

open Relpipe_service

let run ?obs ~engine script =
  let core = Core.create ?obs ~engine () in
  List.concat_map (Core.process_tick core) script.Script.ticks

let streams replies =
  let tbl : (int, string list ref) Hashtbl.t = Hashtbl.create 8 in
  let order = ref [] in
  List.iter
    (fun (sid, line) ->
      match Hashtbl.find_opt tbl sid with
      | Some acc -> acc := line :: !acc
      | None ->
          Hashtbl.replace tbl sid (ref [ line ]);
          order := sid :: !order)
    replies;
  let sids = List.sort Int.compare (List.rev !order) in
  List.map (fun sid -> (sid, List.rev !(Hashtbl.find tbl sid))) sids

let render replies =
  let buf = Buffer.create 1024 in
  List.iter
    (fun (sid, line) ->
      Buffer.add_string buf (string_of_int sid);
      Buffer.add_char buf '\t';
      Buffer.add_string buf line;
      Buffer.add_char buf '\n')
    replies;
  Buffer.contents buf

let run_script ?obs ~workers ?(cache_shards = 1) script =
  let engine =
    Engine.create ?obs ~workers ~cap_to_cpus:false ~cache_shards ()
  in
  run ?obs ~engine script
