(** Deterministic replay of a recorded [.session] transcript.

    The transcript's [tick] lines pin the dispatch-batch boundaries the
    live daemon actually formed, so a replay reproduces the recorded
    run's cache-state evolution — and therefore its exact reply bytes —
    for {e every} worker count.  This is the headline determinism
    contract: [render (run ~engine script)] is byte-identical at
    workers 1, 2 and 8. *)

open Relpipe_service

val run :
  ?obs:Relpipe_obs.Obs.t -> engine:Engine.t -> Script.t -> Core.reply list
(** Replay through a fresh {!Core} on [engine]; replies in global event
    order. *)

val run_script :
  ?obs:Relpipe_obs.Obs.t ->
  workers:int ->
  ?cache_shards:int ->
  Script.t ->
  Core.reply list
(** {!run} on a fresh engine with [cap_to_cpus:false] (so worker counts
    above the core count still exercise real parallelism). *)

val streams : Core.reply list -> (int * string list) list
(** Per-session reply streams, sessions sorted ascending, lines in
    reply order. *)

val render : Core.reply list -> string
(** The flattened ["SESSION\tLINE\n"] form the CLI prints and the CI
    gate diffs across worker counts. *)
