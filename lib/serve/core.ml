(* The deterministic heart of the daemon: session bookkeeping plus the
   tick processor shared by the live server and the replayer.

   A tick is one dispatch batch of session events in global admission
   order.  Processing is two-pass:

   - pass 1 walks the events in order, mutating session state (opens,
     closes, handshakes, the draining flag) and answering control
     messages immediately, while collecting solve requests — so
     hello-gating and shutdown see exactly the prefix of the tick that
     precedes them;
   - pass 2 hands the collected solves to [Engine.run_batch] (the
     already-deterministic parallel path) and splices the responses back
     into event order, rewriting each [r_index] from its batch position
     to the session's own solve sequence number — a client sees the same
     indices it would get from a private [relpipe batch].

   Everything here runs on the single dispatcher thread; only the engine
   fans out.  Given the same tick sequence, the reply stream is
   byte-identical for every worker count. *)

open Relpipe_service
module Obs = Relpipe_obs.Obs
module Metric = Relpipe_obs.Metric

type session = { mutable greeted : bool; mutable solves : int }

type t = {
  engine : Engine.t;
  obs : Obs.t option;
  sessions : (int, session) Hashtbl.t;
  mutable draining : bool;
}

type reply = int * string

let create ?obs ~engine () =
  { engine; obs; sessions = Hashtbl.create 16; draining = false }

let engine t = t.engine
let draining t = t.draining
let request_drain t = t.draining <- true
let active_sessions t = Hashtbl.length t.sessions

let stats_bindings t =
  match t.obs with
  | None -> []
  | Some { Obs.metrics; _ } -> Metric.bindings metrics

let set_active_gauge t =
  Obs.gauge_set t.obs "serve.sessions.active" (Hashtbl.length t.sessions)

let open_session t sid =
  if not (Hashtbl.mem t.sessions sid) then begin
    Hashtbl.replace t.sessions sid { greeted = false; solves = 0 };
    Obs.incr t.obs "serve.sessions.opened";
    set_active_gauge t
  end

let close_session t sid =
  if Hashtbl.mem t.sessions sid then begin
    Hashtbl.remove t.sessions sid;
    Obs.incr t.obs "serve.sessions.closed";
    set_active_gauge t
  end

(* A transcript may carry a [send] with no prior [open] (hand-edited
   fixtures); treat it as an implicit open so replies still line up. *)
let session t sid =
  match Hashtbl.find_opt t.sessions sid with
  | Some st -> st
  | None ->
      open_session t sid;
      Hashtbl.find t.sessions sid

(* One slot per [Send], in event order. *)
type slot =
  | Immediate of int * string  (* session, encoded reply line *)
  | Pending of int * int * int  (* session, batch position, session index *)

let answer_control t st control =
  let reply =
    match (control : Protocol.control) with
    | Hello _ ->
        st.greeted <- true;
        Protocol.Hello_ok { protocol = Protocol.version }
    | Stats -> Protocol.Stats_ok (stats_bindings t)
    | Shutdown ->
        t.draining <- true;
        Protocol.Shutdown_ok { draining = true }
  in
  Protocol.encode_control_reply reply

let classify t solves n_solves ev =
  match (ev : Script.event) with
  | Open sid ->
      open_session t sid;
      None
  | Close sid ->
      close_session t sid;
      None
  | Send (sid, line) -> (
      let st = session t sid in
      match Protocol.decode_inbound line with
      | Error e ->
          Obs.incr t.obs "serve.refused";
          Some (Immediate (sid, Protocol.encode_control_reply (Refused e)))
      | Ok (Control c) ->
          Obs.incr t.obs "serve.control";
          Some (Immediate (sid, answer_control t st c))
      | Ok (Solve res) ->
          if not st.greeted then begin
            Obs.incr t.obs "serve.refused";
            Some
              (Immediate
                 (sid, Protocol.encode_control_reply (Refused Hello_required)))
          end
          else begin
            Obs.incr t.obs "serve.requests";
            let pos = !n_solves in
            incr n_solves;
            solves := res :: !solves;
            let idx = st.solves in
            st.solves <- idx + 1;
            Some (Pending (sid, pos, idx))
          end)

let process_tick t events =
  Obs.incr t.obs "serve.ticks";
  let solves = ref [] and n_solves = ref 0 in
  let slots = List.filter_map (classify t solves n_solves) events in
  Obs.observe t.obs "serve.tick.batch" (float_of_int !n_solves);
  let batch = Array.of_list (List.rev !solves) in
  let responses =
    if Array.length batch = 0 then [||] else Engine.run_batch t.engine batch
  in
  List.map
    (fun slot ->
      match slot with
      | Immediate (sid, line) -> (sid, line)
      | Pending (sid, pos, idx) ->
          let r = responses.(pos) in
          (sid, Protocol.encode_response { r with r_index = idx }))
    slots
