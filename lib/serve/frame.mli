(** Newline-delimited framing over a raw file descriptor, with a hard
    per-line size guard so one client cannot balloon its session buffer.

    The reader is blocking and single-threaded (one per session); CRLF
    line endings are tolerated and a final unterminated line before EOF
    still counts as a line. *)

val default_max_line : int
(** 16 MiB. *)

type reader

val reader : ?max_line:int -> Unix.file_descr -> reader

type read_result =
  | Line of string  (** next frame, newline stripped *)
  | Eof  (** orderly end of stream (also connection reset) *)
  | Too_long  (** the guard tripped; the session should be dropped *)

val read_line : reader -> read_result
(** Blocks until a full line, EOF or the size guard.  [EINTR] is
    retried; connection errors read as {!Eof}. *)

val write_line : Unix.file_descr -> string -> unit
(** Write [line ^ "\n"], retrying short writes and [EINTR].  Connection
    errors ([EPIPE], ...) escape as [Unix.Unix_error] — the caller owns
    dead-peer policy. *)
