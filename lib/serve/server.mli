(** The live daemon: listeners, per-session I/O threads, one
    dispatcher thread (the caller's), all multiplexed onto the engine's
    domain pool.

    {b Backpressure.}  Two bounded stages keep a slow or flooding
    client away from the pool: a per-session in-flight window (the
    reader blocks — and so does the client's socket — while too many of
    that session's lines are unanswered or unwritten) and a bounded
    global admission queue (all readers block when the dispatcher falls
    behind).  The dispatcher never blocks on a session; writer threads
    absorb slow consumers.

    {b Drain.}  {!signal_drain} is safe to call from a signal handler
    (it only sets an atomic flag and writes a wake-up byte).  The server
    then stops accepting, EOFs the receive side of every session,
    answers {e everything already admitted}, flushes the writers and
    returns — the [relpipe serve] process exits 0.  A [shutdown]
    protocol request triggers exactly the same path.

    {b Recording.}  With [record], every dispatch batch is appended to
    a [.session] transcript ({!Script}), tick boundaries included — the
    input {!Replay} needs to reproduce the run byte-for-byte at any
    worker count. *)

type endpoint = Unix_sock of string  (** socket path (replaced if stale) *)
  | Tcp of string * int  (** host, port (0 picks a free port) *)

type config = {
  endpoints : endpoint list;  (** at least one *)
  queue_capacity : int;  (** global admission bound, default 256 *)
  session_window : int;  (** per-session in-flight bound, default 32 *)
  max_line : int;  (** framing guard, default {!Frame.default_max_line} *)
  record : string option;  (** [.session] transcript path *)
}

val default_config : config
(** No endpoints (callers must add one), queue 256, window 32. *)

type report = {
  accepted : int;  (** sessions accepted over the run *)
  ticks : int;  (** dispatch batches formed *)
  answered : int;  (** reply lines produced *)
}

val run :
  ?obs:Relpipe_obs.Obs.t ->
  engine:Relpipe_service.Engine.t ->
  ?config:config ->
  ?on_ready:(Unix.sockaddr list -> unit) ->
  unit ->
  report
(** Serve until drained; the calling thread becomes the dispatcher.
    [on_ready] fires once the listeners are bound (its [sockaddr]s
    carry the actual TCP port when [Tcp (_, 0)] was requested), before
    the first accept — the hook tests and the CLI use to report
    readiness.  Installs [Signal_ignore] on [SIGPIPE].  Pass the same
    [obs] as the engine's so the [stats] method sees all registries.

    @raise Invalid_argument when [config.endpoints] is empty. *)

val signal_drain : unit -> unit
(** Request drain: async-signal-safe (atomic flag + self-pipe byte).
    Wire it to SIGTERM/SIGINT in the CLI. *)

val draining : unit -> bool
(** Whether a drain has been requested (process-wide). *)
