(** The [.session] recording format: a replayable transcript of a
    multi-client serve run.

    A recording is a sequence of {e ticks} — the dispatch batches the
    daemon actually formed — each holding events in global admission
    order:

    {v
#relpipe-session v1
open 0
send 0 {"v":1,"op":"hello","client":"a"}
tick
open 1
send 0 {"v":1,"id":"a-0","instance":"...","objective":{...}}
send 1 {"v":1,"op":"hello","client":"b"}
tick
close 0
close 1
tick
    v}

    [open]/[close] mark connections (ids are connect-order integers),
    [send ID LINE] carries one raw inbound JSONL line, and [tick] closes
    a batch.  Blank lines and [#] comments are ignored; a leading
    [#relpipe-session v1] header is written by {!render} and enforced on
    parse when present.  Because ticks pin the batch boundaries, a
    replay reproduces the recorded run's cache-state evolution — and
    therefore its exact response bytes — for every worker count. *)

type event =
  | Open of int  (** a client connected (connect-order id) *)
  | Send of int * string  (** one raw inbound line from that session *)
  | Close of int  (** the session ended *)

type t = { ticks : event list list }

val magic : string
(** ["#relpipe-session v1"]. *)

val session_of_event : event -> int

val events : t -> event list
(** All events, tick structure flattened. *)

val parse : string -> (t, string) result
(** Errors name the offending 1-based line. *)

val load : string -> (t, string) result
(** [parse] over a file; I/O failures become [Error]. *)

val render_event : event -> string
(** One transcript line (no trailing newline) — the incremental-recording
    building block of {!render}. *)

val render : t -> string
(** Inverse of {!parse} (modulo comments/blank lines); every tick is
    terminated explicitly. *)
