(* The .session recording format: a line-oriented transcript of a
   multi-client serve run, precise enough to replay bit-for-bit.

   Events carry the global admission order; `tick` lines mark the
   dispatch-batch boundaries the live daemon actually used, so a replay
   reproduces the exact cache-state evolution (hits, misses, shared
   jobs) of the recorded run. *)

type event =
  | Open of int
  | Send of int * string
  | Close of int

type t = { ticks : event list list }

let magic = "#relpipe-session v1"

let session_of_event = function Open s | Send (s, _) | Close s -> s

let events t = List.concat t.ticks

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

let parse_id lineno word =
  match int_of_string_opt word with
  | Some s when s >= 0 -> Ok s
  | _ ->
      Error
        (Printf.sprintf "line %d: session id must be a non-negative integer, got %S"
           lineno word)

let ( let* ) = Result.bind

let parse text =
  let lines = String.split_on_char '\n' text in
  let rec go lineno ticks current = function
    | [] ->
        (* An implicit final tick collects trailing events. *)
        let ticks =
          if current = [] then ticks else List.rev current :: ticks
        in
        Ok { ticks = List.rev ticks }
    | line :: rest -> (
        let lineno = lineno + 1 in
        let trimmed = String.trim line in
        if trimmed = "" then go lineno ticks current rest
        else if String.length trimmed > 0 && trimmed.[0] = '#' then
          if
            String.length trimmed >= 16
            && String.sub trimmed 0 16 = "#relpipe-session"
            && trimmed <> magic
          then Error (Printf.sprintf "line %d: unsupported session format %S" lineno trimmed)
          else go lineno ticks current rest
        else if trimmed = "tick" then
          go lineno (List.rev current :: ticks) [] rest
        else
          match String.index_opt trimmed ' ' with
          | None -> Error (Printf.sprintf "line %d: malformed event %S" lineno trimmed)
          | Some sp -> (
              let verb = String.sub trimmed 0 sp in
              let arg =
                String.sub trimmed (sp + 1) (String.length trimmed - sp - 1)
              in
              match verb with
              | "open" ->
                  let* s = parse_id lineno arg in
                  go lineno ticks (Open s :: current) rest
              | "close" ->
                  let* s = parse_id lineno arg in
                  go lineno ticks (Close s :: current) rest
              | "send" -> (
                  match String.index_opt arg ' ' with
                  | None ->
                      Error
                        (Printf.sprintf "line %d: send needs \"send ID LINE\"" lineno)
                  | Some sp2 ->
                      let* s = parse_id lineno (String.sub arg 0 sp2) in
                      let payload =
                        String.sub arg (sp2 + 1) (String.length arg - sp2 - 1)
                      in
                      go lineno ticks (Send (s, payload) :: current) rest)
              | other ->
                  Error
                    (Printf.sprintf
                       "line %d: unknown verb %S (expected open/send/close/tick)"
                       lineno other)))
  in
  go 0 [] [] lines

let load path =
  match In_channel.with_open_text path In_channel.input_all with
  | text -> parse text
  | exception Sys_error msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let render_event = function
  | Open s -> Printf.sprintf "open %d" s
  | Close s -> Printf.sprintf "close %d" s
  | Send (s, line) -> Printf.sprintf "send %d %s" s line

let render t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf magic;
  Buffer.add_char buf '\n';
  List.iter
    (fun tick ->
      List.iter
        (fun ev ->
          Buffer.add_string buf (render_event ev);
          Buffer.add_char buf '\n')
        tick;
      Buffer.add_string buf "tick\n")
    t.ticks;
  Buffer.contents buf
