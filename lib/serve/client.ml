(* A small blocking client for the serve protocol — what `relpipe call`
   and the tests use.  Send and receive are independent (the socket is
   full duplex); callers that pipeline deeply should recv from another
   thread to avoid filling both socket buffers. *)

type t = {
  fd : Unix.file_descr;
  reader : Frame.reader;
  mutable sent : int;
  mutable received : int;
}

let connect endpoint =
  let fd =
    match endpoint with
    | `Unix path ->
        let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Unix.connect fd (Unix.ADDR_UNIX path);
        fd
    | `Tcp (host, port) ->
        let addr =
          match Unix.inet_addr_of_string host with
          | a -> a
          | exception Failure _ -> (
              match (Unix.gethostbyname host).Unix.h_addr_list with
              | addrs when Array.length addrs > 0 -> addrs.(0)
              | _ -> invalid_arg (Printf.sprintf "call: cannot resolve %S" host)
              | exception Not_found ->
                  invalid_arg (Printf.sprintf "call: cannot resolve %S" host))
        in
        let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
        Unix.connect fd (Unix.ADDR_INET (addr, port));
        fd
  in
  { fd; reader = Frame.reader fd; sent = 0; received = 0 }

let send t line =
  Frame.write_line t.fd line;
  t.sent <- t.sent + 1

let recv t =
  match Frame.read_line t.reader with
  | Frame.Line l ->
      t.received <- t.received + 1;
      Some l
  | Frame.Eof | Frame.Too_long -> None

let sent t = t.sent
let received t = t.received

let finish_sending t =
  try Unix.shutdown t.fd Unix.SHUTDOWN_SEND with Unix.Unix_error _ -> ()

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

(* One request, one reply — the protocol answers every line exactly
   once, in order, so a lockstep exchange needs no concurrency. *)
let call t line =
  send t line;
  recv t
