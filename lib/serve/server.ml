(* The live daemon: listeners, per-session I/O threads, one dispatcher.

   Thread layout (POSIX threads; OCaml domains stay inside the engine's
   pool):

   - one accept thread, [select]ing over the listeners and a drain
     wake-up pipe;
   - per session, a reader thread (socket -> admission queue) and a
     writer thread (outbox -> socket);
   - the dispatcher (the caller's thread): drains the admission queue,
     one batch per wakeup, feeds it to [Core.process_tick], fans the
     replies out to the session outboxes, and appends the batch to the
     recording.  The tick boundaries it records are exactly what
     [Replay] will pin.

   Backpressure has two stages, so a slow or flooding client can never
   stall the pool: the per-session window blocks the reader (and hence
   the client's socket) while too many of its lines are unanswered or
   unwritten, and the bounded admission queue blocks all readers when
   the dispatcher falls behind.  The dispatcher itself never blocks on
   a session — replies go to the outbox, and the writer thread absorbs
   a slow consumer.

   Drain (SIGTERM or a [shutdown] request): {!signal_drain} only sets an
   atomic flag and writes one byte to the wake-up pipe — safe from a
   signal handler.  The accept thread then closes the listeners, shuts
   down the receive side of every live session (readers see EOF after
   finishing the line they already read), waits for the readers to
   finish and closes the admission queue.  The dispatcher answers
   everything still queued — every admitted request is answered — and
   the writers flush before their sockets close. *)

(* ------------------------------------------------------------------ *)
(* Drain signal (shared with the SIGTERM handler)                      *)
(* ------------------------------------------------------------------ *)

let drain_flag = Atomic.make false
let drain_wakeup : Unix.file_descr option Atomic.t = Atomic.make None

let signal_drain () =
  Atomic.set drain_flag true;
  match Atomic.get drain_wakeup with
  | None -> ()
  | Some fd -> (
      try ignore (Unix.write fd (Bytes.of_string "!") 0 1)
      with Unix.Unix_error _ -> ())

let draining () = Atomic.get drain_flag

(* ------------------------------------------------------------------ *)
(* Configuration                                                       *)
(* ------------------------------------------------------------------ *)

type endpoint = Unix_sock of string | Tcp of string * int

type config = {
  endpoints : endpoint list;
  queue_capacity : int;
  session_window : int;
  max_line : int;
  record : string option;
}

let default_config =
  {
    endpoints = [];
    queue_capacity = 256;
    session_window = 32;
    max_line = Frame.default_max_line;
    record = None;
  }

(* ------------------------------------------------------------------ *)
(* Sessions                                                            *)
(* ------------------------------------------------------------------ *)

type session = {
  sid : int;
  fd : Unix.file_descr;
  mu : Mutex.t;
  cond : Condition.t;
  outbox : string Queue.t;
  mutable inflight : int;  (* admitted lines not yet written back *)
  mutable flushed : bool;  (* no further replies will be pushed *)
  window : int;
}

let with_lock mu f =
  Mutex.lock mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock mu) f

(* Block while the session is at its window; [false] when drain raced
   in — the line is dropped unadmitted rather than waiting forever. *)
let window_acquire s =
  with_lock s.mu (fun () ->
      while s.inflight >= s.window && not (Atomic.get drain_flag) do
        Condition.wait s.cond s.mu
      done;
      let ok = s.inflight < s.window in
      if ok then s.inflight <- s.inflight + 1;
      ok)

let window_release s =
  with_lock s.mu (fun () ->
      s.inflight <- s.inflight - 1;
      Condition.broadcast s.cond)

let outbox_push s line =
  with_lock s.mu (fun () ->
      Queue.push line s.outbox;
      Condition.broadcast s.cond)

let outbox_done s =
  with_lock s.mu (fun () ->
      s.flushed <- true;
      Condition.broadcast s.cond)

let outbox_pop s =
  with_lock s.mu (fun () ->
      while Queue.is_empty s.outbox && not s.flushed do
        Condition.wait s.cond s.mu
      done;
      if Queue.is_empty s.outbox then None else Some (Queue.pop s.outbox))

(* ------------------------------------------------------------------ *)
(* Server state                                                        *)
(* ------------------------------------------------------------------ *)

type t = {
  core : Core.t;
  queue : Script.event Admission.t;
  cfg : config;
  reg_mu : Mutex.t;
  reg_cond : Condition.t;
  mutable next_sid : int;
  mutable live_readers : int;
  mutable session_list : session list;
  mutable threads : Thread.t list;
  mutable ticks : int;
  mutable answered : int;
  record_oc : out_channel option;
}

let find_session t sid =
  with_lock t.reg_mu (fun () ->
      List.find_opt (fun s -> s.sid = sid) t.session_list)

let reader_exited t =
  with_lock t.reg_mu (fun () ->
      t.live_readers <- t.live_readers - 1;
      Condition.broadcast t.reg_cond)

(* ------------------------------------------------------------------ *)
(* Session threads                                                     *)
(* ------------------------------------------------------------------ *)

let reader_loop t s =
  let r = Frame.reader ~max_line:t.cfg.max_line s.fd in
  let rec loop () =
    (* The drain check sits before the read, never between a read and
       its push: a line already read is still admitted and answered. *)
    if not (Atomic.get drain_flag) then
      match Frame.read_line r with
      | Frame.Eof -> ()
      | Frame.Too_long -> ()  (* size guard tripped: drop the session *)
      | Frame.Line line ->
          if window_acquire s then
            if Admission.push t.queue (Script.Send (s.sid, line)) then loop ()
            else window_release s
  in
  loop ();
  ignore (Admission.push t.queue (Script.Close s.sid));
  reader_exited t

let writer_loop s =
  let dead = ref false in
  let rec loop () =
    match outbox_pop s with
    | None -> ()
    | Some line ->
        if not !dead then (
          try Frame.write_line s.fd line with Unix.Unix_error _ -> dead := true);
        window_release s;
        loop ()
  in
  loop ();
  try Unix.close s.fd with Unix.Unix_error _ -> ()

(* ------------------------------------------------------------------ *)
(* Accepting                                                           *)
(* ------------------------------------------------------------------ *)

let accept_one t lfd =
  match Unix.accept ~cloexec:true lfd with
  | exception
      Unix.Unix_error
        ((Unix.EINTR | Unix.ECONNABORTED | Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
    ->
      ()
  | fd, _addr ->
      let s =
        with_lock t.reg_mu (fun () ->
            let sid = t.next_sid in
            t.next_sid <- sid + 1;
            let s =
              {
                sid;
                fd;
                mu = Mutex.create ();
                cond = Condition.create ();
                outbox = Queue.create ();
                inflight = 0;
                flushed = false;
                window = t.cfg.session_window;
              }
            in
            t.session_list <- s :: t.session_list;
            t.live_readers <- t.live_readers + 1;
            s)
      in
      (* Open is pushed before the reader starts, so it precedes every
         Send of this session in admission order. *)
      ignore (Admission.push t.queue (Script.Open s.sid));
      let rt = Thread.create (fun () -> reader_loop t s) () in
      let wt = Thread.create (fun () -> writer_loop s) () in
      with_lock t.reg_mu (fun () -> t.threads <- rt :: wt :: t.threads)

let accept_loop t listeners pipe_r =
  let fds = pipe_r :: listeners in
  let rec loop () =
    if not (Atomic.get drain_flag) then (
      (* The wake-up pipe is the fast path out of this select; the
         timeout is belt-and-braces for a caller that sets the drain
         flag without writing the pipe. *)
      match Unix.select fds [] [] 0.5 with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
      | ready, _, _ ->
          if not (List.memq pipe_r ready) then (
            List.iter
              (fun fd -> if List.memq fd ready then accept_one t fd)
              listeners;
            loop ()))
  in
  loop ();
  (* Drain: stop accepting, EOF the live sessions, wake any reader
     parked on its window, wait the readers out, close admission. *)
  List.iter
    (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
    listeners;
  let sessions = with_lock t.reg_mu (fun () -> t.session_list) in
  List.iter
    (fun s ->
      (try Unix.shutdown s.fd Unix.SHUTDOWN_RECEIVE
       with Unix.Unix_error _ -> ());
      with_lock s.mu (fun () -> Condition.broadcast s.cond))
    sessions;
  with_lock t.reg_mu (fun () ->
      while t.live_readers > 0 do
        Condition.wait t.reg_cond t.reg_mu
      done);
  Admission.close t.queue

(* ------------------------------------------------------------------ *)
(* Dispatching                                                         *)
(* ------------------------------------------------------------------ *)

let record_tick t events =
  match t.record_oc with
  | None -> ()
  | Some oc ->
      List.iter
        (fun ev ->
          output_string oc (Script.render_event ev);
          output_char oc '\n')
        events;
      output_string oc "tick\n";
      flush oc

let dispatch t =
  let rec loop () =
    match Admission.drain t.queue with
    | [] -> ()
    | events ->
        t.ticks <- t.ticks + 1;
        record_tick t events;
        let replies = Core.process_tick t.core events in
        t.answered <- t.answered + List.length replies;
        List.iter
          (fun (sid, line) ->
            match find_session t sid with
            | Some s -> outbox_push s line
            | None -> ())
          replies;
        List.iter
          (fun ev ->
            match (ev : Script.event) with
            | Close sid -> (
                match find_session t sid with
                | Some s -> outbox_done s
                | None -> ())
            | Open _ | Send _ -> ())
          events;
        if Core.draining t.core then signal_drain ();
        loop ()
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Listeners and lifecycle                                             *)
(* ------------------------------------------------------------------ *)

let resolve_host host =
  match Unix.inet_addr_of_string host with
  | addr -> addr
  | exception Failure _ -> (
      match (Unix.gethostbyname host).Unix.h_addr_list with
      | addrs when Array.length addrs > 0 -> addrs.(0)
      | _ -> invalid_arg (Printf.sprintf "serve: cannot resolve host %S" host)
      | exception Not_found ->
          invalid_arg (Printf.sprintf "serve: cannot resolve host %S" host))

let listen_endpoint ep =
  match ep with
  | Unix_sock path ->
      (try Unix.unlink path with Unix.Unix_error _ -> ());
      let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.bind fd (Unix.ADDR_UNIX path);
      Unix.listen fd 64;
      fd
  | Tcp (host, port) ->
      let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt fd Unix.SO_REUSEADDR true;
      Unix.bind fd (Unix.ADDR_INET (resolve_host host, port));
      Unix.listen fd 64;
      fd

type report = { accepted : int; ticks : int; answered : int }

let run ?obs ~engine ?(config = default_config) ?on_ready () =
  (match config.endpoints with
  | [] -> invalid_arg "Server.run: no endpoints"
  | _ :: _ -> ());
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  Atomic.set drain_flag false;
  let pipe_r, pipe_w = Unix.pipe ~cloexec:true () in
  Atomic.set drain_wakeup (Some pipe_w);
  let listeners = List.map listen_endpoint config.endpoints in
  let record_oc =
    Option.map
      (fun path ->
        let oc = open_out path in
        output_string oc (Script.magic ^ "\n");
        oc)
      config.record
  in
  let t =
    {
      core = Core.create ?obs ~engine ();
      queue = Admission.create ~capacity:config.queue_capacity;
      cfg = config;
      reg_mu = Mutex.create ();
      reg_cond = Condition.create ();
      next_sid = 0;
      live_readers = 0;
      session_list = [];
      threads = [];
      ticks = 0;
      answered = 0;
      record_oc;
    }
  in
  (match on_ready with
  | Some f -> f (List.map Unix.getsockname listeners)
  | None -> ());
  let acceptor = Thread.create (fun () -> accept_loop t listeners pipe_r) () in
  dispatch t;
  Thread.join acceptor;
  (* Belt and braces: every session got its Close-driven flush above,
     but make sure no writer can wait forever before we join. *)
  List.iter outbox_done (with_lock t.reg_mu (fun () -> t.session_list));
  List.iter Thread.join (with_lock t.reg_mu (fun () -> t.threads));
  Option.iter close_out t.record_oc;
  Atomic.set drain_wakeup None;
  (try Unix.close pipe_r with Unix.Unix_error _ -> ());
  (try Unix.close pipe_w with Unix.Unix_error _ -> ());
  List.iter
    (fun ep ->
      match ep with
      | Unix_sock path -> (
          try Unix.unlink path with Unix.Unix_error _ -> ())
      | Tcp _ -> ())
    config.endpoints;
  { accepted = t.next_sid; ticks = t.ticks; answered = t.answered }
