(** The daemon's deterministic tick processor, shared by the live
    server and the {!Replay}er.

    State is per-session handshake/sequence bookkeeping plus a draining
    flag; {!process_tick} consumes one dispatch batch of events in
    global admission order and returns one reply line per [Send], in
    event order.  Solve requests are batched through
    {!Relpipe_service.Engine.run_batch} — the already-deterministic
    parallel path — and each response's [index] is rewritten to the
    session's own solve sequence, so a client sees the same indices a
    private [relpipe batch] would give it.

    Runs on a single thread (the dispatcher); given the same tick
    sequence the reply stream is byte-identical at every worker count.

    Metrics (root [serve.]): counters [serve.ticks], [serve.requests]
    (admitted solve lines), [serve.control], [serve.refused],
    [serve.sessions.opened], [serve.sessions.closed]; gauge
    [serve.sessions.active]; histogram [serve.tick.batch] (solves per
    tick). *)

open Relpipe_service

type t

val create : ?obs:Relpipe_obs.Obs.t -> engine:Engine.t -> unit -> t
(** Pass the {e same} [obs] the engine was created with — it is the
    registry the [stats] protocol method renders. *)

val engine : t -> Engine.t
val draining : t -> bool

val request_drain : t -> unit
(** What a [shutdown] control message does, callable from the outside
    (SIGTERM path). *)

val active_sessions : t -> int

type reply = int * string
(** Session id, encoded reply line (no newline). *)

val process_tick : t -> Script.event list -> reply list
(** Process one dispatch batch.  Every [Send] yields exactly one reply:
    a control answer, a typed refusal ([hello-required] before the
    handshake, decode refusals for op-shaped lines), or a solve
    response.  [Open]/[Close] only mutate session state. *)
