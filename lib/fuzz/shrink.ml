open Relpipe_model

let max_checks = 1000

type result = { case : Gen.case; steps : int; checks : int }

let same_bits a b = Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)

(* Round to three significant digits via the printer; keeps the value in
   range (and positive when it was). *)
let round_sig3 v =
  if Float.is_finite v then float_of_string (Printf.sprintf "%.3g" v) else v

let copy (f : Surgery.flat) =
  {
    f with
    Surgery.stages = Array.copy f.Surgery.stages;
    speeds = Array.copy f.Surgery.speeds;
    failures = Array.copy f.Surgery.failures;
    bw = Array.map Array.copy f.Surgery.bw;
  }

(* Every float in the flat instance, with its simplification target and a
   functional setter.  Failure probabilities round toward 0.5 — rounding
   them to 1.0 would trip the fp = 1 lint error and mask the original
   failure behind a solver guard. *)
let sites (f : Surgery.flat) =
  let acc = ref [] in
  let add v target set = acc := (v, target, set) :: !acc in
  add f.Surgery.input 1.0 (fun v -> { (copy f) with Surgery.input = v });
  Array.iteri
    (fun i (w, d) ->
      add w 1.0 (fun v ->
          let g = copy f in
          g.Surgery.stages.(i) <- (v, d);
          g);
      add d 1.0 (fun v ->
          let g = copy f in
          g.Surgery.stages.(i) <- (w, v);
          g))
    f.Surgery.stages;
  Array.iteri
    (fun i s ->
      add s 1.0 (fun v ->
          let g = copy f in
          g.Surgery.speeds.(i) <- v;
          g))
    f.Surgery.speeds;
  Array.iteri
    (fun i p ->
      add p 0.5 (fun v ->
          let g = copy f in
          g.Surgery.failures.(i) <- v;
          g))
    f.Surgery.failures;
  Array.iteri
    (fun i row ->
      Array.iteri
        (fun j b ->
          if i < j then
            add b 1.0 (fun v ->
                let g = copy f in
                g.Surgery.bw.(i).(j) <- v;
                g.Surgery.bw.(j).(i) <- v;
                g))
        row)
    f.Surgery.bw;
  List.rev !acc

(* How far a float is from fully shrunk: 0 at its target value, 1 when
   already rounded to three significant digits, 2 otherwise. *)
let float_cost v target =
  if same_bits v target then 0
  else if same_bits v (round_sig3 v) then 1
  else 2

(* Structural size dominates, then the number of unsimplified floats.
   Candidates are only accepted when this strictly decreases, which rules
   out oscillation (e.g. an objective threshold flipping 1.0 <-> 0.5
   while the oracle keeps failing) and guarantees termination. *)
let complexity (flat : Surgery.flat) obj =
  let structural =
    Array.length flat.Surgery.stages + Array.length flat.Surgery.speeds
  in
  let floats =
    List.fold_left (fun acc (v, t, _) -> acc + float_cost v t) 0 (sites flat)
  in
  let objective =
    match obj with
    | Instance.Min_latency { max_failure } -> float_cost max_failure 1.0
    | Instance.Min_failure { max_latency } -> float_cost max_latency 1.0
  in
  (10_000 * structural) + floats + objective

let candidates (flat : Surgery.flat) obj =
  let n = Array.length flat.Surgery.stages
  and m = Array.length flat.Surgery.speeds in
  let structural =
    List.concat
      [
        (if n > 1 then List.init n (fun i -> (Surgery.drop_stage flat i, obj))
         else []);
        (if m > 1 then List.init m (fun u -> (Surgery.drop_proc flat u, obj))
         else []);
      ]
  in
  let numeric =
    List.concat_map
      (fun (v, target, set) ->
        List.filter_map
          (fun v' -> if same_bits v v' then None else Some (set v', obj))
          [ target; round_sig3 v ])
      (sites flat)
  in
  let objective =
    let simpl mk thr targets =
      List.filter_map
        (fun t -> if same_bits t thr then None else Some (flat, mk t))
        (targets @ [ round_sig3 thr ])
    in
    match obj with
    | Instance.Min_latency { max_failure } ->
        simpl (fun t -> Instance.Min_latency { max_failure = t }) max_failure
          [ 1.0; 0.5 ]
    | Instance.Min_failure { max_latency } ->
        simpl (fun t -> Instance.Min_failure { max_latency = t }) max_latency
          [ 1.0 ]
  in
  structural @ numeric @ objective

let minimize (oracle : Oracle.t) ctx (case : Gen.case) =
  let checks = ref 0 and steps = ref 0 in
  let still_fails c =
    incr checks;
    Oracle.is_fail (oracle.Oracle.check ctx c)
  in
  let current = ref case in
  let improved = ref true in
  while !improved && !checks < max_checks do
    improved := false;
    let cur = !current in
    let flat = Surgery.flatten cur.Gen.instance in
    let bar = complexity flat cur.Gen.objective in
    try
      List.iter
        (fun (f, obj) ->
          if !checks >= max_checks then raise Exit;
          match Surgery.build f with
          | None -> ()
          | Some inst ->
              let c =
                Gen.of_instance ~id:case.Gen.id ~seed:case.Gen.seed inst obj
              in
              if complexity f obj < bar && still_fails c then begin
                current := c;
                incr steps;
                improved := true;
                raise Exit
              end)
        (candidates flat cur.Gen.objective)
    with Exit -> ()
  done;
  { case = !current; steps = !steps; checks = !checks }
