(** Greedy delta-shrinking of failing cases.

    Given an oracle that fails on a case, repeatedly try
    simplifications — drop a stage, drop a processor, replace a cost by
    [1.0] (failure probabilities by [0.5], which stays lint-clean), round
    a float to three significant digits, simplify the objective
    threshold — and keep the first candidate that still fails, restarting
    until no candidate fails or the re-check budget is exhausted.
    Candidates are enumerated in a fixed order and the case seed is
    preserved, so shrinking is deterministic. *)

type result = {
  case : Gen.case;  (** the minimized case (original if nothing shrank) *)
  steps : int;  (** accepted simplifications *)
  checks : int;  (** oracle re-checks spent *)
}

val max_checks : int
(** Re-check budget per minimization (1000). *)

val minimize : Oracle.t -> Oracle.ctx -> Gen.case -> result
