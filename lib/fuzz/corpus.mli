(** Replayable counterexample files.

    A repro is a plain [.relpipe] instance file (the
    {!Relpipe_model.Textio} grammar) whose leading comment lines carry
    the replay metadata, so every corpus entry is simultaneously a valid
    instance for the rest of the toolchain:

    {v
    # relpipe fuzz repro
    # oracle: interval-dp
    # seed: 123456789
    # objective: min-failure max-latency 4.5
    # replay: relpipe fuzz --replay <this file>
    input 1
    ...
    v}

    Floats in the [objective] header are printed with ["%.17g"], so a
    repro replays the exact case that failed. *)

type repro = {
  oracle : string;
  seed : int;
  instance : Relpipe_model.Instance.t;
  objective : Relpipe_model.Instance.objective;
}

val to_string : oracle:string -> Gen.case -> string

val write : path:string -> oracle:string -> Gen.case -> unit

val of_string : string -> (repro, string) result
(** Parse repro text: the metadata headers plus the instance body. *)

val read : string -> (repro, string) result
(** [of_string] on a file's contents; IO failures are [Error]. *)

val replay : ?ctx:Oracle.ctx -> repro -> (Oracle.outcome, string) result
(** Re-run the named oracle on the reconstructed case ([Error] when the
    oracle name is not registered). *)

val replay_file : ?ctx:Oracle.ctx -> string -> (Oracle.outcome, string) result
