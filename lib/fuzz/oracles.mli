(** The registered oracle suite.

    Eight invariants, each cross-checking an independent implementation
    pair (differential testing) or a re-derivable property of the paper's
    algorithms:

    + [interval-dp] — the [O(n^2 m^2 2^m)] interval DP of
      {!Relpipe_core.Interval_exact} agrees with brute-force interval
      enumeration ({!Relpipe_core.Exact.min_latency_unreplicated}) on
      small instances, and its mapping prices at the claimed latency;
    + [general-shortest-path] — the four general-mapping solvers
      (Dijkstra, Bellman–Ford, DAG sweep, direct DP) agree, and their
      optimum lower-bounds the interval optimum (Theorem 4 vs the
      interval restriction);
    + [heuristics-pareto] — every heuristic's solution is feasible,
      evaluation-consistent, never beats the exhaustive optimum, and is
      dominated-or-equal by the exhaustive Pareto front;
    + [validate-lint] — [Solver.run Auto] outputs survive
      {!Relpipe_core.Validate.check} and [relpipe lint] with zero
      [Error]-level diagnostics;
    + [canon-invariance] — renumbering the processors of a
      link-homogeneous instance yields the same {!Relpipe_service.Canon}
      key, a cache hit through the batch {!Relpipe_service.Engine}, and a
      permutation-translated identical mapping;
    + [text-roundtrip] — {!Relpipe_model.Textio},
      {!Relpipe_model.Mapping_syntax} and
      {!Relpipe_service.Protocol} print→parse→print byte-identically;
    + [json-floats] — {!Relpipe_service.Json} number round-trips are
      bit-identical on adversarial floats (subnormals, [-0.], 1e±308,
      non-finite spellings, random bit patterns);
    + [lru] — {!Relpipe_util.Lru} matches a reference model under random
      op sequences at the edge capacities 0 and 1 and a random small
      capacity. *)

val all : unit -> Oracle.t list
(** The registry, in the documented order. *)

val names : unit -> string list

val find : string -> Oracle.t option

(** {1 Exposed single checks}

    The reusable cores of the property oracles, for fixed-seed unit
    tests. *)

val json_float_roundtrip : float -> (unit, string) result
(** [parse (to_string (Json.float v))] decodes to a bit-identical float
    (NaNs compare by class: the payload has no textual spelling). *)

val lru_check :
  Relpipe_util.Rng.t -> capacity:int -> ops:int -> (unit, string) result
(** Drive a fresh [Lru.create ~capacity] with [ops] random operations
    drawn from [rng], mirroring every step against a reference
    association-list model: find results, lengths and the hit/miss/
    eviction counters must agree throughout. *)
