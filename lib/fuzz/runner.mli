(** Campaign driver: generate, check in parallel, shrink, report.

    A campaign is fully determined by its {!config}: per-case seeds are
    drawn sequentially from the master stream, each oracle derives its
    private stream from the (case seed, oracle salt) pair, checking runs
    through {!Relpipe_service.Pool.map} (submission-order results), and
    shrinking is sequential in case order — so {!render} output is
    byte-identical across runs and worker counts. *)

type config = {
  seed : int;
  count : int;
  oracles : Oracle.t list;
  max_stages : int;
  max_procs : int;
  workers : int;
  perturb : float;  (** forwarded to {!Oracle.ctx} (harness self-test) *)
  out_dir : string option;
      (** when set, minimized repros are written here as
          [fuzz-<oracle>-<seed>.relpipe] *)
  obs : Relpipe_obs.Obs.t option;
      (** when set, the campaign records the [fuzz.cases] counter and one
          [fuzz.oracle.<name>.duration_ns] histogram per oracle (per-case
          forked clocks, observed in case order — worker-independent) *)
}

val default_config : config
(** seed 42, count 100, all oracles, {!Gen.default_shape}, 1 worker, no
    perturbation, no output directory, no observability. *)

type failure = {
  f_oracle : string;
  f_case : Gen.case;  (** the case as generated *)
  f_message : string;
  f_minimized : Gen.case;
  f_min_message : string;  (** the failure message of the minimized case *)
  f_steps : int;  (** accepted shrink steps *)
  f_path : string option;  (** repro path when [out_dir] was set *)
}

type tally = { t_oracle : string; t_pass : int; t_skip : int; t_fail : int }

type report = {
  r_config : config;
  r_tallies : tally list;  (** one per configured oracle, registry order *)
  r_failures : failure list;  (** case order, then oracle order *)
}

val run : config -> report

val render : report -> string
(** The deterministic campaign report: one header line, one tally line
    per oracle, one block per failure (minimized repro text inline plus
    the replay command), and a summary line. *)

val list_oracles_text : unit -> string
(** The [--list-oracles] listing (stable: byte-for-byte tested). *)
