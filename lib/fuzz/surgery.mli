(** Flattened instances for delta-shrinking.

    The shrinker needs to delete stages and processors and nudge
    individual cost numbers; the immutable model types make that awkward,
    so shrinking works on a flat array representation with explicit
    index surgery, rebuilt into an {!Relpipe_model.Instance.t} (or
    rejected) per candidate. *)

type flat = {
  input : float;  (** delta_0 *)
  stages : (float * float) array;
      (** (work, output) pairs; stage [k] at index [k-1] *)
  speeds : float array;
  failures : float array;
  bw : float array array;
      (** [(m+2) x (m+2)] symmetric bandwidth matrix with [Pin] at index
          0, processor [u] at [u+1] and [Pout] at [m+1]; the diagonal is
          unused. *)
}

val flatten : Relpipe_model.Instance.t -> flat

val build : flat -> Relpipe_model.Instance.t option
(** [None] when the flat data violates a model precondition (no stages or
    processors left, non-positive cost, probability outside [0,1]); the
    shrinker simply discards such candidates. *)

val drop_stage : flat -> int -> flat
(** Remove the stage at (0-based) index [i]; the preceding output feeds
    the next stage directly. *)

val drop_proc : flat -> int -> flat
(** Remove processor [u] together with its matrix row and column;
    higher-numbered processors shift down. *)
