(** The oracle abstraction of the differential fuzzer.

    An oracle is a named, documented invariant checked against one
    generated {!Gen.case}.  Oracles are pure: given the same context and
    case they return the same outcome, which is what makes campaign
    output byte-deterministic across runs and worker counts, and what
    lets the shrinker re-check candidate reductions. *)

type outcome =
  | Pass
  | Skip of string  (** not applicable (platform class, size guard) *)
  | Fail of string  (** invariant violated; the message is the evidence *)

type ctx = {
  perturb : float;
      (** fault injection for harness self-tests: a relative perturbation
          applied to the interval-DP latency inside the [interval-dp]
          oracle.  [0.] (the default) means no fault. *)
}

val default_ctx : ctx

type t = {
  name : string;  (** stable CLI name, e.g. ["interval-dp"] *)
  doc : string;  (** one-line description for [--list-oracles] *)
  salt : int;
      (** stable salt mixed into the per-case seed so each oracle owns an
          independent random stream regardless of which oracles run *)
  check : ctx -> Gen.case -> outcome;
}

val derive : salt:int -> seed:int -> Relpipe_util.Rng.t
(** The private stream for salt/seed pair — what {!rng} computes from an
    oracle record (exposed so oracle implementations and tests can derive
    the same stream without a record in hand). *)

val rng : t -> Gen.case -> Relpipe_util.Rng.t
(** The oracle's private stream for this case: a pure function of
    [case.seed] and [t.salt]. *)

val is_fail : outcome -> bool

val outcome_to_string : outcome -> string
(** ["pass"], ["skip: ..."] or ["FAIL: ..."]. *)
