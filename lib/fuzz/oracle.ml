type outcome = Pass | Skip of string | Fail of string

type ctx = { perturb : float }

let default_ctx = { perturb = 0.0 }

type t = {
  name : string;
  doc : string;
  salt : int;
  check : ctx -> Gen.case -> outcome;
}

(* A fixed odd multiplier decorrelates the per-oracle streams; the
   combination stays a pure function of (case seed, oracle salt). *)
let derive ~salt ~seed =
  Relpipe_util.Rng.create ((seed lxor (salt * 0x9E3779B9)) land max_int)

let rng t (case : Gen.case) = derive ~salt:t.salt ~seed:case.Gen.seed

let is_fail = function Fail _ -> true | Pass | Skip _ -> false

let outcome_to_string = function
  | Pass -> "pass"
  | Skip msg -> "skip: " ^ msg
  | Fail msg -> "FAIL: " ^ msg
