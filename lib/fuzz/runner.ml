module Rng = Relpipe_util.Rng
module Pool = Relpipe_service.Pool
module Obs = Relpipe_obs.Obs
module Clock = Relpipe_obs.Clock

type config = {
  seed : int;
  count : int;
  oracles : Oracle.t list;
  max_stages : int;
  max_procs : int;
  workers : int;
  perturb : float;
  out_dir : string option;
  obs : Obs.t option;
}

let default_config =
  {
    seed = 42;
    count = 100;
    oracles = Oracles.all ();
    max_stages = Gen.default_shape.Gen.max_stages;
    max_procs = Gen.default_shape.Gen.max_procs;
    workers = 1;
    perturb = 0.0;
    out_dir = None;
    obs = None;
  }

type failure = {
  f_oracle : string;
  f_case : Gen.case;
  f_message : string;
  f_minimized : Gen.case;
  f_min_message : string;
  f_steps : int;
  f_path : string option;
}

type tally = { t_oracle : string; t_pass : int; t_skip : int; t_fail : int }

type report = {
  r_config : config;
  r_tallies : tally list;
  r_failures : failure list;
}

let run config =
  let ctx = { Oracle.perturb = config.perturb } in
  let master = Rng.create config.seed in
  let shape =
    { Gen.max_stages = config.max_stages; max_procs = config.max_procs }
  in
  (* Seeds are drawn in case order from the master stream; nothing after
     this point touches it, so the case list is worker-independent. *)
  let seeds = Array.make config.count 0 in
  for i = 0 to config.count - 1 do
    seeds.(i) <- Gen.case_seed ~master
  done;
  let cases =
    Array.init config.count (fun id -> Gen.generate ~id ~seed:seeds.(id) shape)
  in
  (* Per-(case, oracle) durations, timed on a clock forked per case id and
     observed in case order after the pool drains — so the histograms are
     worker-count-independent (and fixed-tick under a virtual clock). *)
  let durs = Array.make config.count [||] in
  let check_case case =
    match config.obs with
    | None -> List.map (fun o -> (o, o.Oracle.check ctx case)) config.oracles
    | Some ob ->
        let clk = Clock.fork ob.Obs.clock case.Gen.id in
        let timed =
          List.map
            (fun o ->
              let t0 = Clock.now_ns clk in
              let r = o.Oracle.check ctx case in
              (o, r, Clock.now_ns clk - t0))
            config.oracles
        in
        (* slot case.id has exactly one writer and is read only after
           Pool.map joins its workers *)
        (* devlint: allow RP-S301 *)
        durs.(case.Gen.id) <-
          Array.of_list (List.map (fun (o, _, d) -> (o.Oracle.name, d)) timed);
        List.map (fun (o, r, _) -> (o, r)) timed
  in
  let outcomes, _stats =
    Pool.map ?obs:config.obs ~workers:(max 1 config.workers) check_case cases
  in
  Obs.add config.obs "fuzz.cases" config.count;
  Array.iter
    (Array.iter (fun (name, d) ->
         Obs.observe config.obs
           ("fuzz.oracle." ^ name ^ ".duration_ns")
           (float_of_int d)))
    durs;
  let tallies =
    List.map
      (fun o ->
        let count p =
          Array.fold_left
            (fun acc per_case ->
              List.fold_left
                (fun acc (o', outcome) ->
                  if String.equal o'.Oracle.name o.Oracle.name && p outcome then
                    acc + 1
                  else acc)
                acc per_case)
            0 outcomes
        in
        {
          t_oracle = o.Oracle.name;
          t_pass = count (function Oracle.Pass -> true | _ -> false);
          t_skip = count (function Oracle.Skip _ -> true | _ -> false);
          t_fail = count (function Oracle.Fail _ -> true | _ -> false);
        })
      config.oracles
  in
  (* Shrinking re-runs oracles, so it stays sequential, in case order. *)
  let failures = ref [] in
  Array.iteri
    (fun id per_case ->
      List.iter
        (fun (o, outcome) ->
          match outcome with
          | Oracle.Pass | Oracle.Skip _ -> ()
          | Oracle.Fail message ->
              let case = cases.(id) in
              let shrunk = Shrink.minimize o ctx case in
              let minimized = shrunk.Shrink.case in
              let min_message =
                match o.Oracle.check ctx minimized with
                | Oracle.Fail msg -> msg
                | Oracle.Pass | Oracle.Skip _ -> message
              in
              let path =
                match config.out_dir with
                | None -> None
                | Some dir ->
                    if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
                    let path =
                      Filename.concat dir
                        (Printf.sprintf "fuzz-%s-%d.relpipe" o.Oracle.name
                           case.Gen.seed)
                    in
                    Corpus.write ~path ~oracle:o.Oracle.name minimized;
                    Some path
              in
              failures :=
                {
                  f_oracle = o.Oracle.name;
                  f_case = case;
                  f_message = message;
                  f_minimized = minimized;
                  f_min_message = min_message;
                  f_steps = shrunk.Shrink.steps;
                  f_path = path;
                }
                :: !failures)
        per_case)
    outcomes;
  { r_config = config; r_tallies = tallies; r_failures = List.rev !failures }

let indent prefix text =
  String.concat "\n"
    (List.map
       (fun line -> if String.length line = 0 then line else prefix ^ line)
       (String.split_on_char '\n' text))

let render report =
  let c = report.r_config in
  let buf = Buffer.create 1024 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  (* No worker count here: the report must be byte-identical for every
     worker count. *)
  pr "relpipe fuzz: seed=%d count=%d oracles=%d shape=%dx%d" c.seed c.count
    (List.length c.oracles) c.max_stages c.max_procs;
  if not (Float.equal c.perturb 0.0) then pr " perturb=%g" c.perturb;
  pr "\n";
  let width =
    List.fold_left
      (fun acc t -> max acc (String.length t.t_oracle))
      0 report.r_tallies
  in
  List.iter
    (fun t ->
      pr "  %-*s  pass=%-4d skip=%-4d fail=%d\n" width t.t_oracle t.t_pass
        t.t_skip t.t_fail)
    report.r_tallies;
  List.iter
    (fun f ->
      pr "\nFAIL %s case=%d seed=%d\n" f.f_oracle f.f_case.Gen.id
        f.f_case.Gen.seed;
      pr "  %s\n" f.f_message;
      pr "  minimized (%d steps): %s\n" f.f_steps f.f_min_message;
      pr "%s\n"
        (indent "    " (Corpus.to_string ~oracle:f.f_oracle f.f_minimized));
      (match f.f_path with
      | Some path -> pr "  replay: relpipe fuzz --replay %s\n" path
      | None ->
          pr "  replay: save the block above and run: relpipe fuzz --replay \
              FILE\n"))
    report.r_failures;
  let failed = List.length report.r_failures in
  pr "summary: %d cases, %d oracles, %d failure%s\n" c.count
    (List.length c.oracles) failed
    (if failed = 1 then "" else "s");
  Buffer.contents buf

let list_oracles_text () =
  let oracles = Oracles.all () in
  let width =
    List.fold_left (fun acc o -> max acc (String.length o.Oracle.name)) 0 oracles
  in
  String.concat ""
    (List.map
       (fun o -> Printf.sprintf "%-*s  %s\n" width o.Oracle.name o.Oracle.doc)
       oracles)
