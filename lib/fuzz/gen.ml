open Relpipe_model
module Rng = Relpipe_util.Rng
module Core = Relpipe_core

type cls = Fully_homog | Comm_homog | Fully_hetero

let cls_to_string = function
  | Fully_homog -> "fully-homog"
  | Comm_homog -> "comm-homog"
  | Fully_hetero -> "fully-hetero"

let cls_of_platform platform =
  match Classify.comm_class platform with
  | Classify.Fully_homogeneous -> Fully_homog
  | Classify.Comm_homogeneous -> Comm_homog
  | Classify.Fully_heterogeneous -> Fully_hetero

type case = {
  id : int;
  seed : int;
  cls : cls;
  instance : Instance.t;
  objective : Instance.objective;
}

type shape = { max_stages : int; max_procs : int }

let default_shape = { max_stages = 6; max_procs = 5 }

(* Per-case seeds come from the master stream's raw 64-bit draws, folded
   into a non-negative int so they survive the textual corpus format. *)
let case_seed ~master = Int64.to_int (Rng.int64 master) land max_int

let random_platform rng cls ~m =
  let module P = Relpipe_workload.Plat_gen in
  match cls with
  | Fully_homog ->
      P.random_fully_homogeneous rng ~m ~speed:(1.0, 10.0)
        ~failure:(0.05, 0.6) ~bandwidth:(1.0, 10.0)
  | Comm_homog ->
      P.random_comm_homogeneous rng ~m ~speed:(1.0, 10.0) ~failure:(0.05, 0.6)
        ~bandwidth:(Rng.float_range rng 1.0 10.0)
  | Fully_hetero ->
      P.random_fully_heterogeneous rng ~m ~speed:(1.0, 10.0)
        ~failure:(0.05, 0.6) ~bandwidth:(0.5, 10.0)

(* Thresholds are drawn from the instance's own Pareto threshold ranges,
   then occasionally scaled so that clearly-infeasible and trivially-loose
   regimes are exercised too. *)
let random_objective rng instance =
  let pick_scale () = Rng.pick rng [| 0.5; 1.0; 1.0; 1.0; 2.0 |] in
  if Rng.bool rng then begin
    let thresholds = Core.Pareto.latency_thresholds instance ~count:5 in
    let t = List.nth thresholds (Rng.int rng (List.length thresholds)) in
    Instance.Min_failure { max_latency = t *. pick_scale () }
  end
  else begin
    let thresholds = Core.Pareto.failure_thresholds instance ~count:5 in
    let t = List.nth thresholds (Rng.int rng (List.length thresholds)) in
    let max_failure = Relpipe_util.Float_cmp.clamp ~lo:0.0 ~hi:1.0 (t *. pick_scale ()) in
    Instance.Min_latency { max_failure }
  end

let generate ~id ~seed shape =
  let rng = Rng.create seed in
  let cls = Rng.pick rng [| Fully_homog; Comm_homog; Fully_hetero |] in
  let n = 1 + Rng.int rng shape.max_stages in
  let m = 1 + Rng.int rng shape.max_procs in
  let pipeline = Relpipe_workload.App_gen.random_sized rng ~n in
  let platform = random_platform rng cls ~m in
  let instance = Instance.make pipeline platform in
  let objective = random_objective rng instance in
  { id; seed; cls; instance; objective }

let of_instance ?(id = 0) ~seed instance objective =
  { id; seed; cls = cls_of_platform instance.Instance.platform; instance;
    objective }

(* ------------------------------------------------------------------ *)
(* Random mappings (round-trip oracle)                                 *)
(* ------------------------------------------------------------------ *)

let random_composition rng n =
  let rec build first k acc =
    if k > n then List.rev acc
    else if k = n || Rng.bool rng then build (k + 1) (k + 1) ((first, k) :: acc)
    else build first (k + 1) acc
  in
  build 1 1 []

let random_mapping rng ~n ~m =
  let rec pick_intervals () =
    let ivs = random_composition rng n in
    if List.length ivs <= m then ivs else pick_intervals ()
  in
  let intervals = pick_intervals () in
  let p = List.length intervals in
  let perm = Array.to_list (Rng.permutation rng m) in
  (* One seed processor per interval, then scatter a random subset of the
     remainder as replicas. *)
  let seeds, rest =
    let rec split k = function
      | xs when k = 0 -> ([], xs)
      | [] -> ([], [])
      | x :: tl ->
          let a, b = split (k - 1) tl in
          (x :: a, b)
    in
    split p perm
  in
  let sets = Array.of_list (List.map (fun u -> [ u ]) seeds) in
  List.iter
    (fun u ->
      if Rng.bool rng then begin
        let j = Rng.int rng p in
        sets.(j) <- u :: sets.(j)
      end)
    rest;
  Mapping.make ~n ~m
    (List.mapi
       (fun j (first, last) -> { Mapping.first; last; procs = sets.(j) })
       intervals)

let pp ppf c =
  Format.fprintf ppf "case %d (seed %d, %s, n=%d, m=%d, %a)" c.id c.seed
    (cls_to_string c.cls)
    (Pipeline.length c.instance.Instance.pipeline)
    (Platform.size c.instance.Instance.platform)
    Instance.pp_objective c.objective
