open Relpipe_model
module Rng = Relpipe_util.Rng
module F = Relpipe_util.Float_cmp
module Lru = Relpipe_util.Lru
module Core = Relpipe_core
module Service = Relpipe_service
module A = Relpipe_analysis

(* Checks are written as imperative sequences; these exceptions keep the
   nesting flat and are converted to outcomes by the [oracle] wrapper. *)
exception Check_failed of string
exception Check_skipped of string

let failf fmt = Format.kasprintf (fun s -> raise (Check_failed s)) fmt
let skipf fmt = Format.kasprintf (fun s -> raise (Check_skipped s)) fmt

let oracle ~name ~doc ~salt f =
  {
    Oracle.name;
    doc;
    salt;
    check =
      (fun ctx case ->
        match f ctx (Oracle.derive ~salt ~seed:case.Gen.seed) case with
        | () -> Oracle.Pass
        | exception Check_failed msg -> Oracle.Fail msg
        | exception Check_skipped msg -> Oracle.Skip msg
        | exception e ->
            (* An unexpected exception from the code under test is a
               finding, not a harness crash. *)
            Oracle.Fail ("uncaught exception: " ^ Printexc.to_string e));
  }

let shape (case : Gen.case) =
  ( Pipeline.length case.Gen.instance.Instance.pipeline,
    Platform.size case.Gen.instance.Instance.platform )

(* ------------------------------------------------------------------ *)
(* 1. interval-dp: exact DP vs brute-force interval enumeration        *)
(* ------------------------------------------------------------------ *)

let check_interval_dp ctx _rng (case : Gen.case) =
  let inst = case.Gen.instance in
  let n, m = shape case in
  if n > 8 || m > 6 then skipf "size guard: n=%d m=%d (needs n <= 8, m <= 6)" n m;
  match
    (Core.Interval_exact.min_latency inst, Core.Exact.min_latency_unreplicated inst)
  with
  | None, None -> ()
  | Some _, None -> failf "interval DP found a mapping, brute force found none"
  | None, Some _ -> failf "brute force found a mapping, interval DP found none"
  | Some (dp, dp_map), Some (bf, _) ->
      let claimed = dp *. (1.0 +. ctx.Oracle.perturb) in
      if not (F.approx_eq claimed bf) then
        failf "interval DP latency %.17g <> brute-force latency %.17g" claimed bf;
      let ev = Instance.evaluate inst dp_map in
      if not (F.approx_eq ev.Instance.latency dp) then
        failf "DP mapping re-prices at %.17g, DP claimed %.17g"
          ev.Instance.latency dp

(* ------------------------------------------------------------------ *)
(* 2. general-shortest-path: four solvers agree, bound the interval    *)
(* ------------------------------------------------------------------ *)

let check_general _ctx _rng (case : Gen.case) =
  let inst = case.Gen.instance in
  let n, m = shape case in
  let dij, _ = Core.General_mapping.solve ~algo:Core.General_mapping.Dijkstra inst in
  let bel, _ =
    Core.General_mapping.solve ~algo:Core.General_mapping.Bellman_ford inst
  in
  let dag, _ = Core.General_mapping.solve ~algo:Core.General_mapping.Dag_sweep inst in
  let dp, _ = Core.General_mapping.solve_dp inst in
  List.iter
    (fun (name, v) ->
      if not (F.approx_eq dij v) then
        failf "general-mapping %s latency %.17g <> Dijkstra %.17g" name v dij)
    [ ("Bellman-Ford", bel); ("DAG sweep", dag); ("direct DP", dp) ];
  if n <= 8 && m <= 6 then
    match Core.Interval_exact.min_latency inst with
    | None -> ()
    | Some (interval, _) ->
        if not (F.leq dij interval) then
          failf "general optimum %.17g exceeds the interval optimum %.17g" dij
            interval

(* ------------------------------------------------------------------ *)
(* 3. heuristics-pareto: dominated-or-equal by the exhaustive front    *)
(* ------------------------------------------------------------------ *)

let pareto_front evals =
  let sorted =
    List.sort
      (fun (a : Instance.evaluation) (b : Instance.evaluation) ->
        match Float.compare a.Instance.latency b.Instance.latency with
        | 0 -> Float.compare a.Instance.failure b.Instance.failure
        | c -> c)
      evals
  in
  let rec sweep best = function
    | [] -> []
    | (e : Instance.evaluation) :: tl ->
        if e.Instance.failure < best then e :: sweep e.Instance.failure tl
        else sweep best tl
  in
  sweep infinity sorted

let check_heuristics _ctx rng (case : Gen.case) =
  let inst = case.Gen.instance and obj = case.Gen.objective in
  let n, m = shape case in
  (* count_mappings counts by enumeration, so bound the shape before
     asking for the count (same pre-guard as Solver.small_enough). *)
  if n > 6 || m > 6 then skipf "size guard: n=%d m=%d (needs n <= 6, m <= 6)" n m;
  let space = Core.Exact.count_mappings ~n ~m () in
  if space > 5_000 then skipf "mapping space %d > 5000" space;
  let evals = ref [] and best = ref None in
  Core.Exact.iter_mappings ~n ~m (fun mapping ->
      let ev = Instance.evaluate inst mapping in
      evals := ev :: !evals;
      if Instance.feasible obj ev then begin
        let v = Instance.objective_value obj ev in
        match !best with
        | None -> best := Some v
        | Some b -> if v < b then best := Some v
      end);
  let front = pareto_front !evals in
  let seed = Rng.int rng 1_000_000 in
  List.iter
    (fun name ->
      match Core.Heuristics.run ~seed name inst obj with
      | None -> ()
      | Some s ->
          let hname = Core.Heuristics.name_to_string name in
          let stored = s.Core.Solution.evaluation in
          let ev = Instance.evaluate inst s.Core.Solution.mapping in
          if
            not
              (F.approx_eq ev.Instance.latency stored.Instance.latency
              && F.approx_eq ev.Instance.failure stored.Instance.failure)
          then
            failf "heuristic %s evaluation (%.17g, %.17g) re-prices as (%.17g, %.17g)"
              hname stored.Instance.latency stored.Instance.failure
              ev.Instance.latency ev.Instance.failure;
          if not (Instance.feasible obj stored) then
            failf "heuristic %s returned an infeasible solution" hname;
          (match !best with
          | None ->
              failf
                "heuristic %s found a feasible solution where exhaustive \
                 enumeration found none"
                hname
          | Some b ->
              let v = Instance.objective_value obj stored in
              if not (F.geq v b) then
                failf "heuristic %s objective %.17g beats the exhaustive optimum %.17g"
                  hname v b);
          if
            not
              (List.exists
                 (fun (p : Instance.evaluation) ->
                   F.leq p.Instance.latency ev.Instance.latency
                   && F.leq p.Instance.failure ev.Instance.failure)
                 front)
          then
            failf "heuristic %s evaluation is not dominated by the exhaustive \
                   Pareto front"
              hname)
    Core.Heuristics.all_names

(* ------------------------------------------------------------------ *)
(* 4. validate-lint: solver outputs survive re-validation              *)
(* ------------------------------------------------------------------ *)

let check_validate _ctx _rng (case : Gen.case) =
  match Core.Solver.run case.Gen.instance case.Gen.objective with
  | Error e ->
      failf "Solver.run failed on a generated instance: %s"
        (Core.Solver.error_to_string e)
  | Ok None -> ()
  | Ok (Some sol) -> (
      let report = Core.Validate.check case.Gen.instance case.Gen.objective sol in
      if not (Core.Validate.ok report) then
        failf "Validate.check rejects the solver output: %s"
          (String.concat "; " report.Core.Validate.messages);
      match
        A.Diagnostic.errors
          (A.Analysis.lint_solution case.Gen.instance sol.Core.Solution.mapping)
      with
      | [] -> ()
      | d :: _ ->
          failf "lint error on solver output: %s" (A.Diagnostic.to_string d))

(* ------------------------------------------------------------------ *)
(* 5. canon-invariance: renumbering symmetry through the engine        *)
(* ------------------------------------------------------------------ *)

let check_canon _ctx rng (case : Gen.case) =
  let inst = case.Gen.instance and obj = case.Gen.objective in
  let platform = inst.Instance.platform in
  if not (Classify.links_homogeneous platform) then
    skipf "links heterogeneous: renumbering is not a platform symmetry";
  let n, m = shape case in
  let sigma = Rng.permutation rng m in
  let inv = Array.make m 0 in
  Array.iteri (fun i u -> inv.(u) <- i) sigma;
  let speeds = Platform.speeds platform and failures = Platform.failures platform in
  let bandwidth =
    match Classify.common_bandwidth platform with Some b -> b | None -> 1.0
  in
  let platform' =
    Platform.uniform_links
      ~speeds:(Array.init m (fun i -> speeds.(sigma.(i))))
      ~failures:(Array.init m (fun i -> failures.(sigma.(i))))
      ~bandwidth
  in
  let inst' = Instance.make inst.Instance.pipeline platform' in
  let engine = Service.Engine.create ~workers:1 ~cache_capacity:64 () in
  let key i =
    (Service.Engine.normalize engine i obj).Service.Canon.key
  in
  if not (String.equal (key inst) (key inst')) then
    failf "renumbered instance canonicalizes to a different cache key";
  let r1 = Service.Engine.solve_instance engine inst obj in
  let r2 = Service.Engine.solve_instance engine inst' obj in
  (match r1.Service.Protocol.r_cache with
  | Service.Protocol.Miss -> ()
  | Service.Protocol.Hit -> failf "first solve reported a cache hit on a fresh engine");
  (match r2.Service.Protocol.r_cache with
  | Service.Protocol.Hit -> ()
  | Service.Protocol.Miss -> failf "renumbered instance missed the result cache");
  match (r1.Service.Protocol.r_outcome, r2.Service.Protocol.r_outcome) with
  | Service.Protocol.Infeasible, Service.Protocol.Infeasible -> ()
  | Service.Protocol.Failed e1, Service.Protocol.Failed e2
    when String.equal e1 e2 -> ()
  | ( Service.Protocol.Solved { mapping = map1; latency = l1; failure = f1 },
      Service.Protocol.Solved { mapping = map2; latency = l2; failure = f2 } ) -> (
      if not (F.approx_eq l1 l2) then
        failf "latency changed under renumbering: %.17g vs %.17g" l1 l2;
      if not (F.approx_eq f1 f2) then
        failf "failure probability changed under renumbering: %.17g vs %.17g" f1 f2;
      match (Mapping_syntax.parse ~n ~m map1, Mapping_syntax.parse ~n ~m map2) with
      | Error msg, _ | _, Error msg -> failf "response mapping does not parse: %s" msg
      | Ok m1, Ok m2 ->
          let ev2 = Instance.evaluate inst' m2 in
          if
            not
              (F.approx_eq ev2.Instance.latency l2
              && F.approx_eq ev2.Instance.failure f2)
          then
            failf "hit response metrics do not re-price on the renumbered \
                   instance";
          (* With pairwise-distinct (speed, failure) signatures the
             canonical order is unambiguous, so the hit must be exactly
             the permutation-translated representative mapping. *)
          let distinct =
            let q =
              Array.init m (fun u ->
                  ( Service.Canon.quantize speeds.(u),
                    Service.Canon.quantize failures.(u) ))
            in
            let ok = ref true in
            for i = 0 to m - 1 do
              for j = i + 1 to m - 1 do
                let si, fi = q.(i) and sj, fj = q.(j) in
                if Float.equal si sj && Float.equal fi fj then ok := false
              done
            done;
            !ok
          in
          if distinct then begin
            let expected =
              Mapping.make ~n ~m
                (List.map
                   (fun iv ->
                     {
                       iv with
                       Mapping.procs =
                         List.sort Int.compare
                           (List.map (fun u -> inv.(u)) iv.Mapping.procs);
                     })
                   (Mapping.intervals m1))
            in
            if not (Mapping.equal expected m2) then
              failf "hit mapping is not the permutation translation of the \
                     representative"
          end)
  | _ -> failf "outcome kind changed under renumbering"

(* ------------------------------------------------------------------ *)
(* 6. text-roundtrip: Textio / Mapping_syntax / Protocol               *)
(* ------------------------------------------------------------------ *)

let check_roundtrip _ctx rng (case : Gen.case) =
  let inst = case.Gen.instance in
  let n, m = shape case in
  let text = Textio.to_string inst in
  (match Textio.parse text with
  | Error msg -> failf "Textio.to_string output does not parse: %s" msg
  | Ok inst2 ->
      if not (String.equal text (Textio.to_string inst2)) then
        failf "Textio print->parse->print is not byte-identical");
  let mapping = Gen.random_mapping rng ~n ~m in
  let mtext = Mapping_syntax.to_string mapping in
  (match Mapping_syntax.parse ~n ~m mtext with
  | Error msg -> failf "Mapping_syntax.to_string output does not parse: %s" msg
  | Ok mapping2 ->
      if not (Mapping.equal mapping mapping2) then
        failf "Mapping_syntax round-trip changed the mapping");
  let rq =
    Service.Protocol.request ~id:"fuzz"
      ~instance:(Service.Protocol.Inline text)
      case.Gen.objective
  in
  let line = Service.Protocol.encode_request rq in
  (match Service.Protocol.decode_request line with
  | Error msg -> failf "encoded request does not decode: %s" msg
  | Ok rq2 ->
      if not (String.equal line (Service.Protocol.encode_request rq2)) then
        failf "request encode->decode->encode is not byte-identical");
  let ev = Instance.evaluate inst mapping in
  let resp =
    {
      Service.Protocol.r_id = Some "fuzz";
      r_index = 0;
      r_cache = Service.Protocol.Miss;
      r_outcome =
        Service.Protocol.Solved
          {
            mapping = Service.Protocol.mapping_to_syntax mapping;
            latency = ev.Instance.latency;
            failure = ev.Instance.failure;
          };
    }
  in
  let rline = Service.Protocol.encode_response resp in
  match Service.Protocol.decode_response rline with
  | Error msg -> failf "encoded response does not decode: %s" msg
  | Ok resp2 ->
      if not (String.equal rline (Service.Protocol.encode_response resp2)) then
        failf "response encode->decode->encode is not byte-identical"

(* ------------------------------------------------------------------ *)
(* 7. json-floats: bit-identical float round-trips                     *)
(* ------------------------------------------------------------------ *)

let same_bits a b = Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)
let float_eq a b = same_bits a b || (Float.is_nan a && Float.is_nan b)

let json_float_roundtrip v =
  let s = Service.Json.to_string (Service.Json.float v) in
  match Service.Json.parse s with
  | Error msg -> Error (Printf.sprintf "%S does not parse back: %s" s msg)
  | Ok j -> (
      match Service.Json.to_float j with
      | None -> Error (Printf.sprintf "%S decodes to a non-number" s)
      | Some v' when not (float_eq v v') ->
          Error
            (Printf.sprintf "round-trip %.17g -> %S -> %.17g changes bits" v s v')
      | Some _ -> (
          (* Embedded in an object, the way the protocol carries it. *)
          let os = Service.Json.to_string (Service.Json.Obj [ ("x", Service.Json.float v) ]) in
          match Service.Json.parse os with
          | Error msg -> Error (Printf.sprintf "%S does not parse back: %s" os msg)
          | Ok o -> (
              match Option.bind (Service.Json.member "x" o) Service.Json.to_float with
              | Some w when float_eq v w -> Ok ()
              | _ ->
                  Error
                    (Printf.sprintf "object-embedded %S does not round-trip" os))))

let adversarial_floats =
  [|
    0.; -0.; 1.; -1.; 0.1; -0.1; 1. /. 3.;
    Float.min_float; -.Float.min_float;
    Float.max_float; -.Float.max_float;
    1e308; -1e308; 1e-308; -1e-308;
    Int64.float_of_bits 1L; Int64.float_of_bits 0x8000_0000_0000_0001L;
    1.5e-310; -1.5e-310;
    Float.epsilon; Float.pi;
    (2. ** 53.) -. 1.; 2. ** 53.; (2. ** 53.) +. 2.;
    infinity; neg_infinity; nan;
  |]

let check_json _ctx rng (_case : Gen.case) =
  Array.iter
    (fun v ->
      match json_float_roundtrip v with Ok () -> () | Error msg -> failf "%s" msg)
    adversarial_floats;
  for _ = 1 to 16 do
    let v = Int64.float_of_bits (Rng.int64 rng) in
    match json_float_roundtrip v with Ok () -> () | Error msg -> failf "%s" msg
  done

(* ------------------------------------------------------------------ *)
(* 8. lru: model-checked cache behaviour at edge capacities            *)
(* ------------------------------------------------------------------ *)

let lru_check rng ~capacity ~ops =
  let t = Lru.create ~capacity in
  (* Reference model: bindings most-recent-first. *)
  let model = ref [] in
  let hits = ref 0 and misses = ref 0 and evictions = ref 0 in
  let keys = [| "k0"; "k1"; "k2"; "k3"; "k4"; "k5"; "k6"; "k7" |] in
  let error = ref None in
  let set_error msg = if Option.is_none !error then error := Some msg in
  let rec take k = function
    | [] -> []
    | x :: tl -> if k = 0 then [] else x :: take (k - 1) tl
  in
  let drop_key key l = List.filter (fun (k, _) -> not (String.equal k key)) l in
  let step () =
    let key = Rng.pick rng keys in
    match Rng.int rng 10 with
    | 0 | 1 | 2 | 3 ->
        let v = Rng.int rng 1000 in
        Lru.add t key v;
        if capacity > 0 then begin
          model := (key, v) :: drop_key key !model;
          if List.length !model > capacity then begin
            model := take capacity !model;
            incr evictions
          end
        end
    | 4 | 5 | 6 -> (
        let got = Lru.find t key in
        let want =
          Option.map snd
            (List.find_opt (fun (k, _) -> String.equal k key) !model)
        in
        match (got, want) with
        | Some a, Some b when a = b ->
            incr hits;
            model := (key, b) :: drop_key key !model
        | None, None -> incr misses
        | Some a, Some b ->
            set_error
              (Printf.sprintf "find %S returned %d, model holds %d" key a b)
        | Some a, None ->
            set_error (Printf.sprintf "find %S returned %d, model has no binding" key a)
        | None, Some b ->
            set_error (Printf.sprintf "find %S missed, model holds %d" key b))
    | 7 ->
        let got = Lru.mem t key in
        let want = List.exists (fun (k, _) -> String.equal k key) !model in
        if not (Bool.equal got want) then
          set_error (Printf.sprintf "mem %S: cache %b, model %b" key got want)
    | 8 ->
        if Lru.length t <> List.length !model then
          set_error
            (Printf.sprintf "length %d, model %d" (Lru.length t)
               (List.length !model))
    | _ ->
        if Rng.int rng 8 = 0 then begin
          Lru.clear t;
          model := []
        end
  in
  let i = ref 0 in
  while !i < ops && Option.is_none !error do
    step ();
    incr i
  done;
  if Option.is_none !error then begin
    let s = Lru.stats t in
    if s.Lru.hits <> !hits then
      set_error (Printf.sprintf "hits %d, model %d" s.Lru.hits !hits);
    if s.Lru.misses <> !misses then
      set_error (Printf.sprintf "misses %d, model %d" s.Lru.misses !misses);
    if s.Lru.evictions <> !evictions then
      set_error (Printf.sprintf "evictions %d, model %d" s.Lru.evictions !evictions);
    if Lru.length t <> List.length !model then
      set_error
        (Printf.sprintf "final length %d, model %d" (Lru.length t)
           (List.length !model));
    if Lru.capacity t <> capacity then
      set_error (Printf.sprintf "capacity %d, created with %d" (Lru.capacity t) capacity)
  end;
  match !error with None -> Ok () | Some msg -> Error msg

let check_lru _ctx rng (_case : Gen.case) =
  List.iter
    (fun capacity ->
      match lru_check rng ~capacity ~ops:100 with
      | Ok () -> ()
      | Error msg -> failf "capacity %d: %s" capacity msg)
    [ 0; 1; 2 + Rng.int rng 4 ]

(* ------------------------------------------------------------------ *)
(* 9. metrics-invariance: recording sinks never change results         *)
(* ------------------------------------------------------------------ *)

let check_metrics_invariance _ctx _rng (case : Gen.case) =
  let inst = case.Gen.instance and obj = case.Gen.objective in
  let encode engine =
    Service.Protocol.encode_response
      (Service.Engine.solve_instance engine inst obj)
  in
  let plain = encode (Service.Engine.create ~workers:1 ~cache_capacity:64 ()) in
  let obs =
    Relpipe_obs.Obs.create ~tracing:true
      ~clock:(Relpipe_obs.Clock.virtual_ ())
      ()
  in
  let instrumented =
    encode (Service.Engine.create ~obs ~workers:1 ~cache_capacity:64 ())
  in
  if not (String.equal plain instrumented) then
    failf "recording sink changed the engine response:\n  plain: %s\n  obs:   %s"
      plain instrumented;
  (* The solver must be equally indifferent to an ambient context. *)
  let run () =
    Core.Solver.run ~method_:Core.Solver.Auto ~exact_budget:200_000 inst obj
  in
  let direct = run () in
  let ambient = Relpipe_obs.Obs.with_ambient (Some obs) run in
  let bits x = Int64.bits_of_float x in
  match (direct, ambient) with
  | Ok None, Ok None -> ()
  | Error e1, Error e2
    when String.equal
           (Core.Solver.error_to_string e1)
           (Core.Solver.error_to_string e2) -> ()
  | Ok (Some s1), Ok (Some s2) ->
      let m1 = Service.Protocol.mapping_to_syntax s1.Core.Solution.mapping
      and m2 = Service.Protocol.mapping_to_syntax s2.Core.Solution.mapping in
      if not (String.equal m1 m2) then
        failf "ambient sink changed the solver mapping: %s vs %s" m1 m2;
      let e1 = s1.Core.Solution.evaluation and e2 = s2.Core.Solution.evaluation in
      if
        not
          (Int64.equal (bits e1.Instance.latency) (bits e2.Instance.latency)
          && Int64.equal (bits e1.Instance.failure) (bits e2.Instance.failure))
      then
        failf
          "ambient sink perturbed solution metrics: (%.17g, %.17g) vs (%.17g, \
           %.17g)"
          e1.Instance.latency e1.Instance.failure e2.Instance.latency
          e2.Instance.failure
  | _ ->
      failf "ambient sink changed the solver outcome class (solved vs \
             infeasible vs error)"

(* ------------------------------------------------------------------ *)
(* 10. opt-vs-reference: optimized kernels equal their frozen twins    *)
(* ------------------------------------------------------------------ *)

let check_opt_vs_reference ctx _rng (case : Gen.case) =
  let inst = case.Gen.instance in
  let n, m = shape case in
  let bits = Int64.bits_of_float in
  let same_latency a b = Int64.equal (bits a) (bits b) in
  (* Interval DP: bounded by the same memory guard as the kernel, plus a
     cell budget so campaigns stay fast. *)
  if m <= Core.Interval_exact.max_procs && (n + 1) * m * (1 lsl m) <= 500_000
  then begin
    match
      (Core.Interval_exact.min_latency inst, Core.Reference.interval_min_latency_reference inst)
    with
    | None, None -> ()
    | Some _, None -> failf "interval DP: optimized solved, reference did not"
    | None, Some _ -> failf "interval DP: reference solved, optimized did not"
    | Some (opt, opt_map), Some (ref_l, ref_map) ->
        let claimed = opt *. (1.0 +. ctx.Oracle.perturb) in
        if not (same_latency claimed ref_l) then
          failf "interval DP latency %.17g is not bit-identical to reference %.17g"
            claimed ref_l;
        if not (Mapping.equal opt_map ref_map) then
          failf "interval DP mapping differs from reference"
  end;
  (* Theorem 4 direct DP: polynomial, no guard needed. *)
  let dp_l, dp_a = Core.General_mapping.solve_dp inst in
  let ref_l, ref_a = Core.Reference.general_dp_reference inst in
  if not (same_latency dp_l ref_l) then
    failf "general DP latency %.17g is not bit-identical to reference %.17g" dp_l
      ref_l;
  if not (Assignment.equal dp_a ref_a) then
    failf "general DP assignment differs from reference";
  (* Branch and bound: exponential twins, so keep the shape small. *)
  if n <= 6 && m <= 5 then begin
    let obj = case.Gen.objective in
    match
      (Core.Bb.solve inst obj, Core.Reference.bb_solve_reference inst obj)
    with
    | None, None -> ()
    | Some _, None -> failf "B&B: optimized found a solution, reference did not"
    | None, Some _ -> failf "B&B: reference found a solution, optimized did not"
    | Some s1, Some s2 ->
        let e1 = s1.Core.Solution.evaluation and e2 = s2.Core.Solution.evaluation in
        if not (same_latency e1.Instance.latency e2.Instance.latency) then
          failf "B&B latency %.17g is not bit-identical to reference %.17g"
            e1.Instance.latency e2.Instance.latency;
        if not (same_latency e1.Instance.failure e2.Instance.failure) then
          failf "B&B failure %.17g is not bit-identical to reference %.17g"
            e1.Instance.failure e2.Instance.failure;
        if not (Mapping.equal s1.Core.Solution.mapping s2.Core.Solution.mapping)
        then failf "B&B mapping differs from reference"
  end

(* ------------------------------------------------------------------ *)
(* 11. churn-incremental: warm-started re-solves == cold solves        *)
(* ------------------------------------------------------------------ *)

let check_churn _ctx rng (case : Gen.case) =
  let module Churn = Relpipe_churn in
  let inst = case.Gen.instance and obj = case.Gen.objective in
  let n, m = shape case in
  if n > 6 || m > 6 then skipf "size guard: n=%d m=%d (needs n <= 6, m <= 6)" n m;
  let world = Churn.World.of_instance inst in
  let trace_seed = Int64.to_int (Rng.int64 rng) land max_int in
  let count = 3 + Rng.int rng 5 in
  (* Joins capped at 8 processors to keep 500-trace campaigns fast. *)
  let events = Churn.Driver.trace ~cap:8 ~seed:trace_seed ~count world in
  let warm = Churn.Engine.run ~objective:obj world events in
  let cold = Churn.Engine.run ~cold:true ~objective:obj world events in
  List.iter2
    (fun (w : Churn.Engine.step) (c : Churn.Engine.step) ->
      if not (Churn.Engine.equal_dp w.Churn.Engine.dp c.Churn.Engine.dp) then
        failf "step %d (%s): warm interval DP differs from cold"
          w.Churn.Engine.index w.Churn.Engine.label;
      if
        not
          (Churn.Engine.equal_solution w.Churn.Engine.solution
             c.Churn.Engine.solution)
      then
        failf "step %d (%s): warm B&B solution differs from cold"
          w.Churn.Engine.index w.Churn.Engine.label)
    warm cold;
  (* A cold replay must see zero reuse and no warm bounds. *)
  List.iter
    (fun (c : Churn.Engine.step) ->
      if c.Churn.Engine.reuse.Core.Interval_exact.Dp.cells_reused <> 0 then
        failf "cold step %d reports reused DP cells" c.Churn.Engine.index;
      if c.Churn.Engine.warm_bound then
        failf "cold step %d reports a warm bound" c.Churn.Engine.index)
    cold

(* ------------------------------------------------------------------ *)
(* 12. par-exact-identity: parallel solvers == serial at every width   *)
(* ------------------------------------------------------------------ *)

let check_par_exact ctx _rng (case : Gen.case) =
  let inst = case.Gen.instance and obj = case.Gen.objective in
  let n, m = shape case in
  if n > 6 || m > 5 then skipf "size guard: n=%d m=%d (needs n <= 6, m <= 5)" n m;
  let bits = Int64.bits_of_float in
  let same a b = Int64.equal (bits a) (bits b) in
  (* B&B: the probe+confirm parallel solve must be bit-identical to the
     serial solve at every worker count, mapping tie-breaks included. *)
  let serial = Core.Bb.solve inst obj in
  List.iter
    (fun workers ->
      match (serial, Core.Bb.solve_par ~workers inst obj) with
      | None, None -> ()
      | Some _, None ->
          failf "B&B workers=%d: parallel infeasible, serial solved" workers
      | None, Some _ ->
          failf "B&B workers=%d: parallel solved, serial infeasible" workers
      | Some s, Some p ->
          let es = s.Core.Solution.evaluation
          and ep = p.Core.Solution.evaluation in
          let claimed = ep.Instance.latency *. (1.0 +. ctx.Oracle.perturb) in
          if not (same claimed es.Instance.latency) then
            failf "B&B workers=%d: latency %.17g not bit-identical to serial \
                   %.17g"
              workers ep.Instance.latency es.Instance.latency;
          if not (same ep.Instance.failure es.Instance.failure) then
            failf "B&B workers=%d: failure %.17g not bit-identical to serial \
                   %.17g"
              workers ep.Instance.failure es.Instance.failure;
          if
            not (Mapping.equal p.Core.Solution.mapping s.Core.Solution.mapping)
          then failf "B&B workers=%d: mapping differs from serial" workers)
    [ 1; 2; 8 ];
  (* Interval DP: the layer-parallel twin, under the kernel's own memory
     guard.  Values and tie-breaking parents are pinned structurally by
     test_par_exact; here only the returned optimum is compared. *)
  if m <= Core.Interval_exact.max_procs then
    let dp_serial = Core.Interval_exact.min_latency inst in
    List.iter
      (fun workers ->
        match (dp_serial, Core.Interval_exact.min_latency_par ~workers inst) with
        | None, None -> ()
        | Some _, None | None, Some _ ->
            failf "interval DP workers=%d: outcome class differs from serial"
              workers
        | Some (sl, smap), Some (pl, pmap) ->
            if not (same pl sl) then
              failf "interval DP workers=%d: latency %.17g not bit-identical \
                     to serial %.17g"
                workers pl sl;
            if not (Mapping.equal pmap smap) then
              failf "interval DP workers=%d: mapping differs from serial"
                workers)
      [ 1; 2; 8 ]

(* ------------------------------------------------------------------ *)
(* 13. cert-replay: emitted certificates check; mutants are rejected   *)
(* ------------------------------------------------------------------ *)

let check_cert_replay _ctx rng (case : Gen.case) =
  let module Cert = Relpipe_cert.Cert in
  let module Check = Relpipe_cert.Check in
  let inst = case.Gen.instance and obj = case.Gen.objective in
  let n, m = shape case in
  if n > 5 || m > 4 then skipf "size guard: n=%d m=%d (needs n <= 5, m <= 4)" n m;
  let expect_accept what cert =
    match Check.check inst cert with
    | Ok entries ->
        if entries <= 0 then failf "%s: checker accepted 0 entries" what
    | Error msg -> failf "%s rejected by the checker: %s" what msg
  in
  let expect_reject what = function
    | None -> failf "%s: mutation had nothing to mutate" what
    | Some mutant -> (
        match Check.check inst mutant with
        | Error _ -> ()
        | Ok _ -> failf "%s was accepted by the checker" what)
  in
  let roundtrip what cert =
    match Cert.of_string (Cert.to_string cert) with
    | Error msg -> failf "%s does not re-parse: %s" what msg
    | Ok reparsed ->
        if not (Cert.equal cert reparsed) then
          failf "%s print->parse round trip is not stable" what
  in
  let battery what cert =
    expect_accept what cert;
    roundtrip what cert;
    let index = Int64.to_int (Rng.int64 rng) land max_int in
    expect_reject
      (Printf.sprintf "%s with a raised bound (index %d)" what index)
      (Cert.mutate_raise_bound ~index cert);
    expect_reject
      (Printf.sprintf "%s with a dropped admission (index %d)" what index)
      (Cert.mutate_drop_line ~index cert)
  in
  let _best, bb_cert = Core.Certify.bb inst obj in
  battery "B&B certificate" bb_cert;
  if m <= Check.dp_max_procs then
    match Core.Certify.interval inst with
    | _, None -> failf "interval DP emitted no certificate"
    | _, Some dp_cert -> battery "interval DP certificate" dp_cert

(* ------------------------------------------------------------------ *)
(* 14. stream-aggregation: streamed atlas equals materialized batch    *)
(* ------------------------------------------------------------------ *)

let check_stream_aggregation _ctx rng (case : Gen.case) =
  let module Atlas = Service.Atlas in
  let module Stream = Relpipe_obs.Stream in
  let inst = case.Gen.instance and obj = case.Gen.objective in
  let n_stages, m = shape case in
  if n_stages > 6 || m > 5 then
    skipf "size guard: n=%d m=%d (needs n <= 6, m <= 5)" n_stages m;
  (* A small pool of work-scaled variants of the case instance: distinct
     texts, so distinct canonical keys, so the stream mixes misses and
     duplicate-driven hits. *)
  let pool = 4 + Rng.int rng 3 in
  let slots =
    Array.init pool (fun i ->
        let scale = 1.0 +. (0.25 *. float_of_int i) in
        let stages =
          List.map
            (fun (s : Pipeline.stage) ->
              { s with Pipeline.work = s.Pipeline.work *. scale })
            (Pipeline.stages inst.Instance.pipeline)
        in
        let pipeline =
          Pipeline.make ~input:(Pipeline.delta inst.Instance.pipeline 0) stages
        in
        let variant = Instance.make pipeline inst.Instance.platform in
        {
          Atlas.sl_text = Textio.to_string variant;
          sl_objective = obj;
          sl_method = Core.Solver.Auto;
          sl_class = Printf.sprintf "v%d" i;
        })
  in
  let n_events = 96 + Rng.int rng 64 in
  let events =
    Array.init n_events (fun i ->
        {
          Atlas.ev_index = i;
          ev_slot = Rng.int rng pool;
          ev_gap_ns = (if i = 0 then 0 else Rng.int rng 10_000);
        })
  in
  let source = { Atlas.slots; events = (fun f -> Array.iter f events) } in
  let run_stream ~chunk () =
    let engine = Service.Engine.create ~workers:1 ~cache_capacity:64 () in
    Atlas.run ~chunk ~solve:(Service.Engine.run_requests engine) source
  in
  let r = run_stream ~chunk:16 () in
  (* Determinism: a fresh engine and a second pass, byte-identical. *)
  let r2 = run_stream ~chunk:16 () in
  if not (String.equal (Atlas.render r) (Atlas.render r2)) then
    failf "atlas report differs between two identical streamed runs";
  (* Chunk invariance: aggregation must not depend on flush boundaries
     (everything except the chunk bookkeeping itself). *)
  let r7 = run_stream ~chunk:7 () in
  let same_buckets a b =
    List.equal
      (fun (i1, c1) (i2, c2) -> Int.equal i1 i2 && Int.equal c1 c2)
      (Stream.Quantile.buckets a) (Stream.Quantile.buckets b)
  in
  if
    r7.Atlas.solved <> r.Atlas.solved
    || r7.Atlas.infeasible <> r.Atlas.infeasible
    || r7.Atlas.failed <> r.Atlas.failed
    || r7.Atlas.cache_hits <> r.Atlas.cache_hits
    || r7.Atlas.bloom_dups <> r.Atlas.bloom_dups
    || r7.Atlas.distinct_slots <> r.Atlas.distinct_slots
    || (not (same_buckets r7.Atlas.latency r.Atlas.latency))
    || not
         (List.equal
            (fun (p1, h1) (p2, h2) -> Int.equal p1 p2 && Float.equal h1 h2)
            r7.Atlas.curve r.Atlas.curve)
  then failf "atlas aggregates depend on the chunk size (7 vs 16)";
  (* Materialized reference: parse each slot's text back and solve it
     once on an independent engine. *)
  let ref_engine = Service.Engine.create ~workers:1 ~cache_capacity:64 () in
  let slot_outcomes =
    Array.map
      (fun (s : Atlas.slot) ->
        match Textio.parse s.Atlas.sl_text with
        | Error msg -> failf "slot text does not re-parse: %s" msg
        | Ok vinst ->
            (Service.Engine.solve_instance ref_engine vinst
               s.Atlas.sl_objective)
              .Service.Protocol.r_outcome)
      slots
  in
  let exp_solved = ref 0
  and exp_infeasible = ref 0
  and exp_failed = ref 0
  and lats = ref [] in
  let touched = Array.make pool false in
  Array.iter
    (fun (ev : Atlas.event) ->
      touched.(ev.Atlas.ev_slot) <- true;
      match slot_outcomes.(ev.Atlas.ev_slot) with
      | Service.Protocol.Solved { latency; _ } ->
          incr exp_solved;
          lats := latency :: !lats
      | Service.Protocol.Infeasible -> incr exp_infeasible
      | Service.Protocol.Failed _ -> incr exp_failed)
    events;
  let distinct =
    Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 touched
  in
  (* Exact counters: bit-for-bit against the reference computation. *)
  if r.Atlas.requests <> n_events then
    failf "streamed %d requests, expected %d" r.Atlas.requests n_events;
  if
    r.Atlas.solved <> !exp_solved
    || r.Atlas.infeasible <> !exp_infeasible
    || r.Atlas.failed <> !exp_failed
  then
    failf
      "outcome counts diverge: streamed (%d, %d, %d), reference (%d, %d, %d)"
      r.Atlas.solved r.Atlas.infeasible r.Atlas.failed !exp_solved
      !exp_infeasible !exp_failed;
  if r.Atlas.distinct_slots <> distinct then
    failf "distinct slots: streamed %d, reference %d" r.Atlas.distinct_slots
      distinct;
  (* Every slot solves at most once (cache capacity covers the pool), so
     the hit count is exactly stream length minus first occurrences. *)
  if r.Atlas.cache_hits <> n_events - distinct then
    failf "cache hits %d, expected %d (= %d events - %d first occurrences)"
      r.Atlas.cache_hits (n_events - distinct) n_events distinct;
  (match List.rev r.Atlas.curve with
  | (pos, rate) :: _ ->
      if pos <> n_events || not (Float.equal rate (Atlas.hit_rate r)) then
        failf "curve does not end at the stream end with the final hit rate"
  | [] -> failf "empty hit-rate curve on a non-empty stream");
  (* Bloom: duplicates can never be missed; false positives are bounded
     (pool distinct keys against a 65536-key filter — allow a thin
     margin rather than betting on zero collisions). *)
  let exact_dups = n_events - distinct in
  if r.Atlas.bloom_dups < exact_dups then
    failf "bloom missed duplicates: flagged %d, at least %d are real"
      r.Atlas.bloom_dups exact_dups;
  if r.Atlas.bloom_dups > exact_dups + ((n_events / 10) + 1) then
    failf "bloom duplicate count %d far exceeds the real %d"
      r.Atlas.bloom_dups exact_dups;
  (* Sketch vs exact offline quantiles, within the documented relative
     guarantee; and structural equality with an offline sketch fed the
     materialized latencies in reverse, split and merged. *)
  let lats = Array.of_list !lats in
  if Stream.Quantile.count r.Atlas.latency <> Array.length lats then
    failf "latency sketch count %d, reference has %d samples"
      (Stream.Quantile.count r.Atlas.latency)
      (Array.length lats);
  if Array.length lats > 0 then begin
    let sorted = Array.copy lats in
    Array.sort Float.compare sorted;
    let gamma = Stream.Quantile.gamma r.Atlas.latency in
    List.iter
      (fun phi ->
        let rank =
          let k =
            int_of_float
              (Float.ceil (phi *. float_of_int (Array.length sorted)))
          in
          if k < 1 then 1 else k
        in
        let exact = sorted.(rank - 1) in
        let est = Stream.Quantile.quantile r.Atlas.latency phi in
        if
          est < exact *. (1.0 -. 1e-9)
          || est > exact *. gamma *. (1.0 +. 1e-9)
        then
          failf
            "quantile(%g) = %.17g outside [x*, gamma x*] for exact %.17g \
             (gamma %.17g)"
            phi est exact gamma)
      [ 0.5; 0.9; 0.95; 0.99; 1.0 ];
    let half = Array.length lats / 2 in
    let a = Stream.Quantile.create () and b = Stream.Quantile.create () in
    for i = Array.length lats - 1 downto 0 do
      Stream.Quantile.add (if i < half then a else b) lats.(i)
    done;
    let merged = Stream.Quantile.merge a b in
    if not (same_buckets merged r.Atlas.latency) then
      failf "streamed sketch differs structurally from merged offline halves";
    if Stream.Quantile.low_count merged <> Stream.Quantile.low_count r.Atlas.latency
    then failf "low-bucket counts diverge between streamed and offline sketches"
  end

(* ------------------------------------------------------------------ *)
(* Registry                                                            *)
(* ------------------------------------------------------------------ *)

let registry =
  [
    oracle ~name:"interval-dp" ~salt:1
      ~doc:
        "exact interval DP matches brute-force interval enumeration (small n, m)"
      check_interval_dp;
    oracle ~name:"general-shortest-path" ~salt:2
      ~doc:"general-mapping solvers agree and lower-bound the interval optimum"
      check_general;
    oracle ~name:"heuristics-pareto" ~salt:3
      ~doc:
        "heuristics are feasible, consistent and dominated by the exhaustive \
         Pareto front"
      check_heuristics;
    oracle ~name:"validate-lint" ~salt:4
      ~doc:"solver outputs pass Validate.check and lint with zero errors"
      check_validate;
    oracle ~name:"canon-invariance" ~salt:5
      ~doc:
        "processor renumbering: same cache key, engine cache hit, translated \
         mapping"
      check_canon;
    oracle ~name:"text-roundtrip" ~salt:6
      ~doc:
        "Textio/Mapping_syntax/Protocol print->parse round-trips are \
         byte-identical"
      check_roundtrip;
    oracle ~name:"json-floats" ~salt:7
      ~doc:"JSON float round-trips are bit-identical on adversarial values"
      check_json;
    oracle ~name:"lru" ~salt:8
      ~doc:"Util.Lru matches a reference model at capacities 0, 1 and k"
      check_lru;
    oracle ~name:"metrics-invariance" ~salt:9
      ~doc:"metrics and tracing sinks never change solver or engine responses"
      check_metrics_invariance;
    oracle ~name:"opt-vs-reference" ~salt:10
      ~doc:
        "optimized solver kernels are bit-identical to their frozen reference \
         twins"
      check_opt_vs_reference;
    oracle ~name:"churn-incremental" ~salt:11
      ~doc:
        "warm-started churn re-solves are byte-identical to cold solves at \
         every event"
      check_churn;
    oracle ~name:"par-exact-identity" ~salt:12
      ~doc:
        "parallel B&B and layer-parallel DP are bit-identical to serial at \
         workers 1/2/8"
      check_par_exact;
    oracle ~name:"cert-replay" ~salt:13
      ~doc:
        "emitted certificates pass the independent checker; raised-bound and \
         dropped-line mutants are rejected"
      check_cert_replay;
    oracle ~name:"stream-aggregation" ~salt:14
      ~doc:
        "streamed atlas aggregates equal the batch-materialized reference: \
         counters bit-for-bit, sketches within rank tolerance"
      check_stream_aggregation;
  ]

let all () = registry
let names () = List.map (fun o -> o.Oracle.name) registry
let find name = List.find_opt (fun o -> String.equal o.Oracle.name name) registry
