open Relpipe_model

type flat = {
  input : float;
  stages : (float * float) array;
  speeds : float array;
  failures : float array;
  bw : float array array;
}

(* Endpoint <-> matrix index: Pin = 0, Proc u = u + 1, Pout = m + 1. *)
let endpoint_of_index ~m i =
  if i = 0 then Platform.Pin
  else if i = m + 1 then Platform.Pout
  else Platform.Proc (i - 1)

let flatten (inst : Instance.t) =
  let p = inst.Instance.pipeline and plat = inst.Instance.platform in
  let n = Pipeline.length p and m = Platform.size plat in
  {
    input = Pipeline.delta p 0;
    stages = Array.init n (fun i -> (Pipeline.work p (i + 1), Pipeline.delta p (i + 1)));
    speeds = Platform.speeds plat;
    failures = Platform.failures plat;
    bw =
      Array.init (m + 2) (fun i ->
          Array.init (m + 2) (fun j ->
              if i = j then 1.0
              else
                Platform.bandwidth plat (endpoint_of_index ~m i)
                  (endpoint_of_index ~m j)));
  }

let build f =
  let m = Array.length f.speeds in
  if Array.length f.stages = 0 || m = 0 then None
  else
    let index = function
      | Platform.Pin -> 0
      | Platform.Proc u -> u + 1
      | Platform.Pout -> m + 1
    in
    match
      Instance.make
        (Pipeline.of_costs ~input:f.input (Array.to_list f.stages))
        (Platform.make ~speeds:f.speeds ~failures:f.failures
           ~bandwidth:(fun a b -> f.bw.(index a).(index b)))
    with
    | inst -> Some inst
    | exception Invalid_argument _ -> None

let drop_at a i = Array.init (Array.length a - 1) (fun j -> if j < i then a.(j) else a.(j + 1))

let drop_stage f i = { f with stages = drop_at f.stages i }

let drop_proc f u =
  let drop_idx = u + 1 in
  {
    f with
    speeds = drop_at f.speeds u;
    failures = drop_at f.failures u;
    bw = Array.map (fun row -> drop_at row drop_idx) (drop_at f.bw drop_idx);
  }
