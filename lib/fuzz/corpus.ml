open Relpipe_model

type repro = {
  oracle : string;
  seed : int;
  instance : Instance.t;
  objective : Instance.objective;
}

let objective_to_string = function
  | Instance.Min_failure { max_latency } ->
      Printf.sprintf "min-failure max-latency %.17g" max_latency
  | Instance.Min_latency { max_failure } ->
      Printf.sprintf "min-latency max-failure %.17g" max_failure

let objective_of_string s =
  match String.split_on_char ' ' (String.trim s) with
  | [ "min-failure"; "max-latency"; v ] -> (
      match float_of_string_opt v with
      | Some f -> Ok (Instance.Min_failure { max_latency = f })
      | None -> Error (Printf.sprintf "objective header: bad float %S" v))
  | [ "min-latency"; "max-failure"; v ] -> (
      match float_of_string_opt v with
      | Some f -> Ok (Instance.Min_latency { max_failure = f })
      | None -> Error (Printf.sprintf "objective header: bad float %S" v))
  | _ -> Error (Printf.sprintf "objective header: cannot parse %S" s)

let to_string ~oracle (case : Gen.case) =
  String.concat "\n"
    [
      "# relpipe fuzz repro";
      "# oracle: " ^ oracle;
      Printf.sprintf "# seed: %d" case.Gen.seed;
      "# objective: " ^ objective_to_string case.Gen.objective;
      "# replay: relpipe fuzz --replay <this file>";
      Textio.to_string case.Gen.instance;
    ]

let write ~path ~oracle case =
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc (to_string ~oracle case))

(* "# key: value" -> Some (key, value) *)
let header_of_line line =
  let line = String.trim line in
  if String.length line = 0 || line.[0] <> '#' then None
  else
    let body = String.trim (String.sub line 1 (String.length line - 1)) in
    match String.index_opt body ':' with
    | None -> None
    | Some i ->
        Some
          ( String.trim (String.sub body 0 i),
            String.trim (String.sub body (i + 1) (String.length body - i - 1))
          )

let of_string text =
  let headers = List.filter_map header_of_line (String.split_on_char '\n' text) in
  let field key =
    Option.map snd (List.find_opt (fun (k, _) -> String.equal k key) headers)
  in
  match (field "oracle", field "seed", field "objective") with
  | None, _, _ -> Error "missing '# oracle:' header"
  | _, None, _ -> Error "missing '# seed:' header"
  | _, _, None -> Error "missing '# objective:' header"
  | Some oracle, Some seed_s, Some obj_s -> (
      match int_of_string_opt seed_s with
      | None -> Error (Printf.sprintf "seed header: bad integer %S" seed_s)
      | Some seed -> (
          match objective_of_string obj_s with
          | Error msg -> Error msg
          | Ok objective -> (
              (* '#' lines are comments in the Textio grammar, so the
                 whole repro text is the instance body. *)
              match Textio.parse text with
              | Error msg -> Error msg
              | Ok instance -> Ok { oracle; seed; instance; objective })))

let read path =
  match In_channel.with_open_text path In_channel.input_all with
  | text -> of_string text
  | exception Sys_error msg -> Error msg

let replay ?(ctx = Oracle.default_ctx) r =
  match Oracles.find r.oracle with
  | None -> Error (Printf.sprintf "unknown oracle %S" r.oracle)
  | Some o ->
      let case = Gen.of_instance ~seed:r.seed r.instance r.objective in
      Ok (o.Oracle.check ctx case)

let replay_file ?ctx path =
  match read path with Error msg -> Error msg | Ok r -> replay ?ctx r
