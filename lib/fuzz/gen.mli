(** Seeded random test-case generation over the paper's three platform
    classes.

    Every case carries its own integer seed: the instance, the objective
    and every random draw an oracle later makes are pure functions of
    that seed, so a case can be re-generated (and a failure re-checked
    during shrinking or replay) without re-running the whole campaign. *)

open Relpipe_model

type cls = Fully_homog | Comm_homog | Fully_hetero

val cls_to_string : cls -> string
(** ["fully-homog" | "comm-homog" | "fully-hetero"]. *)

val cls_of_platform : Platform.t -> cls
(** Classification of an arbitrary platform (used when replaying corpus
    files, whose class is not recorded). *)

type case = {
  id : int;  (** position in the campaign, [0 .. count-1] *)
  seed : int;  (** per-case seed; oracle RNGs derive from it *)
  cls : cls;
  instance : Instance.t;
  objective : Instance.objective;
}

type shape = { max_stages : int; max_procs : int }

val default_shape : shape
(** [max_stages = 6], [max_procs = 5] — small enough that the exhaustive
    reference oracles stay cheap. *)

val case_seed : master:Relpipe_util.Rng.t -> int
(** Draw the next per-case seed from the campaign's master stream. *)

val generate : id:int -> seed:int -> shape -> case
(** Deterministically build case [id] from its seed: platform class,
    pipeline shape, platform parameters and a bi-criteria objective whose
    threshold is drawn from the instance's own Pareto threshold range
    (occasionally scaled to exercise infeasible regimes). *)

val of_instance : ?id:int -> seed:int -> Instance.t -> Instance.objective -> case
(** Wrap an existing instance (shrink candidates, corpus replays) as a
    case with the given oracle seed. *)

val random_mapping : Relpipe_util.Rng.t -> n:int -> m:int -> Mapping.t
(** Uniform-ish random valid interval mapping with replication: a random
    interval partition with at most [m] parts and a random disjoint
    processor assignment (used by the round-trip oracle). *)

val pp : Format.formatter -> case -> unit
(** One-line summary: id, seed, class, n, m, objective. *)
