(** The per-experiment reproduction harness (DESIGN.md, E1-E14).

    Each function regenerates one paper artefact — a worked example, a
    theorem's optimality claim, a reduction's equivalence, or one of the
    extended evaluations — and reports it as a table of paper-claim versus
    measured value.  [all] runs every experiment (deterministically, fixed
    seeds); [print_all] renders them to stdout.  EXPERIMENTS.md is the
    curated record of one such run. *)

val e1_fig34 : unit -> Relpipe_util.Table.t
(** Fig. 3/4 worked example: single-processor latency 105 vs split 7. *)

val e2_fig5 : unit -> Relpipe_util.Table.t
(** Fig. 5 worked example: FP 0.64 single interval vs < 0.2 split, at
    latency threshold 22. *)

val e3_theorem1 : unit -> Relpipe_util.Table.t
(** Min-FP optimality of replicate-everything, vs exhaustive search. *)

val e4_theorem2 : unit -> Relpipe_util.Table.t
(** Min-latency optimality of fastest-single-processor on Comm. Homog. *)

val e5_tsp_reduction : unit -> Relpipe_util.Table.t
(** Theorem 3 reduction equivalence on random TSP instances. *)

val e6_general_mapping : unit -> Relpipe_util.Table.t
(** Theorem 4: four independent algorithms agree; runtime scaling. *)

val e7_algorithms_1_2 : unit -> Relpipe_util.Table.t
(** Algorithms 1/2 vs exhaustive optimum on Fully Homogeneous. *)

val e8_algorithms_3_4 : unit -> Relpipe_util.Table.t
(** Algorithms 3/4 vs exhaustive optimum on CH + Failure Homog. *)

val e9_partition_reduction : unit -> Relpipe_util.Table.t
(** Theorem 7 reduction equivalence on random multisets. *)

val e10_open_case : unit -> Relpipe_util.Table.t
(** CH + Failure Heterogeneous (open problem): heuristic gap vs exact. *)

val e11_np_hard_case : unit -> Relpipe_util.Table.t
(** Fully Heterogeneous (NP-hard): heuristic gap vs exact. *)

val e12_simulator : unit -> Relpipe_util.Table.t
(** Monte-Carlo validation of Eq. (1)/(2) and the FP formula. *)

val e13_pareto : unit -> Relpipe_util.Table.t
(** Latency/reliability trade-off fronts for Fig. 5 and the JPEG
    encoder. *)

val e14_lemma1 : unit -> Relpipe_util.Table.t
(** Lemma 1: single-interval optimality on the homogeneous classes, and
    its failure on Fig. 5. *)

val e15_tri_criteria : unit -> Relpipe_util.Table.t
(** Paper Section 5 future work: reliability under joint latency and
    period constraints. *)

val e16_bb_ablation : unit -> Relpipe_util.Table.t
(** Branch-and-bound pruning vs flat enumeration (search-effort
    ablation). *)

val e16_optima : unit -> Relpipe_util.Table.t
(** The e16 instances' solver {e answers} (optimal FP, latency, mapping),
    printed with [%.17g].  Not part of {!all}: it exists to be pinned in a
    golden snapshot — node counts in {!e16_bb_ablation} may drift with the
    search implementation, these optima must not. *)

val e17_steady_state : unit -> Relpipe_util.Table.t
(** Steady-state simulation vs the analytic period model. *)

val e18_round_robin : unit -> Relpipe_util.Table.t
(** Round-robin replication: throughput gained vs reliability lost on the
    same resources. *)

val e19_interval_vs_general : unit -> Relpipe_util.Table.t
(** The open problem of Section 4.1: how much latency the interval
    restriction costs relative to Theorem 4's general mappings. *)

val e20_mission_scaling : unit -> Relpipe_util.Table.t
(** Failure-rate view: how the optimal mapping shifts as the workflow's
    mission length grows (replication pressure increases). *)

val e21_goodput : unit -> Relpipe_util.Table.t
(** Goodput under mid-stream failures: the reliability-optimal mapping
    completes more of the stream than the latency-optimal one. *)

val e22_contiguous : unit -> Relpipe_util.Table.t
(** The speed-contiguity hypothesis on the open case: how often restricting
    replication sets to speed-contiguous segments is lossless. *)

val e23_comm_model : unit -> Relpipe_util.Table.t
(** Ablation of the one-port assumption: under a multiport model the
    replication penalty vanishes and the Fig. 5 trade-off collapses. *)

val e24_effort_sweep : unit -> Relpipe_util.Table.t
(** Quality-versus-effort ablation of the randomized heuristics: optimum
    recovery rate as the iteration budget grows. *)

val all : unit -> (string * Relpipe_util.Table.t) list
(** Every experiment, titled, in DESIGN.md order. *)

val print_all : unit -> unit
