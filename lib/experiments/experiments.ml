open Relpipe_model
open Relpipe_core
module Rng = Relpipe_util.Rng
module Table = Relpipe_util.Table
module F = Relpipe_util.Float_cmp
module Stats = Relpipe_util.Stats

let f = Table.fmt_float
let latency_of (s : Solution.t) = s.Solution.evaluation.Instance.latency
let failure_of (s : Solution.t) = s.Solution.evaluation.Instance.failure

(* Shared random-instance helpers (fixed seeds: the tables are
   deterministic). *)
let random_pipeline rng ~n =
  Relpipe_workload.App_gen.random rng
    { Relpipe_workload.App_gen.n; work = (1.0, 20.0); data = (0.5, 10.0) }

let fully_homog rng ~n ~m =
  Instance.make (random_pipeline rng ~n)
    (Relpipe_workload.Plat_gen.fully_homogeneous ~m
       ~speed:(Rng.float_range rng 1.0 10.0)
       ~failure:(Rng.float_range rng 0.05 0.6)
       ~bandwidth:(Rng.float_range rng 1.0 10.0))

let comm_homog rng ~n ~m ~fail_homog =
  let failure =
    if fail_homog then begin
      let fp = Rng.float_range rng 0.05 0.6 in
      (fp, fp)
    end
    else (0.05, 0.6)
  in
  Instance.make (random_pipeline rng ~n)
    (Relpipe_workload.Plat_gen.random_comm_homogeneous rng ~m
       ~speed:(1.0, 10.0) ~failure
       ~bandwidth:(Rng.float_range rng 1.0 10.0))

let fully_hetero rng ~n ~m =
  Instance.make (random_pipeline rng ~n)
    (Relpipe_workload.Plat_gen.random_fully_heterogeneous rng ~m
       ~speed:(1.0, 10.0) ~failure:(0.05, 0.6) ~bandwidth:(0.5, 10.0))

let latency_threshold rng inst =
  let n = Pipeline.length inst.Instance.pipeline in
  let m = Platform.size inst.Instance.platform in
  let lo =
    Latency.of_mapping inst.Instance.pipeline inst.Instance.platform
      (Mapping.single_interval ~n ~m [ Mono.fastest_proc inst.Instance.platform ])
  in
  let hi =
    Latency.of_mapping inst.Instance.pipeline inst.Instance.platform
      (Mapping.single_interval ~n ~m (Platform.procs inst.Instance.platform))
  in
  Rng.float_range rng lo (hi *. 1.2)

(* ------------------------------------------------------------------ *)

let e1_fig34 () =
  let inst = Relpipe_workload.Scenarios.fig34 () in
  let t =
    Table.create [ "mapping"; "analytic latency"; "simulated worst case"; "paper" ]
  in
  let row name mapping paper =
    let lat = Latency.of_mapping inst.Instance.pipeline inst.Instance.platform mapping in
    let sim = Relpipe_sim.Trial.worst_case_latency inst mapping in
    Table.add_row t [ name; f lat; f sim; paper ]
  in
  row "whole pipeline on P0" (Relpipe_workload.Scenarios.fig34_single 0) "105";
  row "whole pipeline on P1" (Relpipe_workload.Scenarios.fig34_single 1) "105";
  row "split {S1}->P0 {S2}->P1" (Relpipe_workload.Scenarios.fig34_split ()) "7";
  let opt, _ = General_mapping.solve inst in
  Table.add_row t [ "optimal general mapping (Thm 4)"; f opt; f opt; "7" ];
  t

let e2_fig5 () =
  let inst = Relpipe_workload.Scenarios.fig5 () in
  let objective =
    Instance.Min_failure { max_latency = Relpipe_workload.Scenarios.fig5_threshold }
  in
  let t = Table.create [ "mapping"; "latency"; "failure prob"; "paper" ] in
  let row name mapping paper =
    let e = Instance.evaluate inst mapping in
    Table.add_row t [ name; f e.Instance.latency; f e.Instance.failure; paper ]
  in
  row "single interval, 2 fast procs"
    (Relpipe_workload.Scenarios.fig5_single_two_fast ())
    "FP = 0.64";
  row "split: slow proc + 10 fast replicas"
    (Relpipe_workload.Scenarios.fig5_split ())
    "latency 22, FP < 0.2";
  (match Exact.solve inst objective with
  | Some s ->
      Table.add_row t
        [ "exhaustive optimum (L <= 22)"; f (latency_of s); f (failure_of s);
          "two intervals" ]
  | None -> Table.add_row t [ "exhaustive optimum"; "-"; "-"; "infeasible?" ]);
  t

let optimality_table ~title_col ~instances ~claimed ~reference =
  (* Count how often the polynomial/constructive answer matches the
     exhaustive reference on the given instance family. *)
  let t = Table.create [ title_col; "instances"; "matches"; "match rate" ] in
  List.iter
    (fun (name, insts) ->
      let matches =
        List.length
          (List.filter (fun inst -> F.approx_eq ~eps:1e-6 (claimed inst) (reference inst)) insts)
      in
      let total = List.length insts in
      Table.add_row t
        [ name; string_of_int total; string_of_int matches;
          f (float_of_int matches /. float_of_int total) ])
    instances;
  t

let e3_theorem1 () =
  let rng = Rng.create 301 in
  let make gen = List.init 20 (fun _ -> gen rng ~n:(1 + Rng.int rng 3) ~m:(2 + Rng.int rng 3)) in
  let exhaustive_min_fp inst =
    let n = Pipeline.length inst.Instance.pipeline in
    let m = Platform.size inst.Instance.platform in
    let best = ref Float.infinity in
    Exact.iter_mappings ~n ~m (fun mapping ->
        let fp = Failure.of_mapping inst.Instance.platform mapping in
        if fp < !best then best := fp);
    !best
  in
  optimality_table ~title_col:"platform class (min FP, Thm 1)"
    ~instances:
      [
        ("Fully Homogeneous", make fully_homog);
        ("Comm. Homogeneous", make (fun rng ~n ~m -> comm_homog rng ~n ~m ~fail_homog:false));
        ("Fully Heterogeneous", make fully_hetero);
      ]
    ~claimed:(fun inst -> failure_of (Mono.min_failure inst))
    ~reference:exhaustive_min_fp

let e4_theorem2 () =
  let rng = Rng.create 401 in
  let make gen = List.init 20 (fun _ -> gen rng ~n:(1 + Rng.int rng 3) ~m:(2 + Rng.int rng 3)) in
  optimality_table ~title_col:"platform class (min latency, Thm 2)"
    ~instances:
      [
        ("Fully Homogeneous", make fully_homog);
        ("Comm. Homogeneous", make (fun rng ~n ~m -> comm_homog rng ~n ~m ~fail_homog:false));
      ]
    ~claimed:(fun inst -> latency_of (Mono.min_latency_comm_homog inst))
    ~reference:Exact.min_latency

let e5_tsp_reduction () =
  let rng = Rng.create 501 in
  let t =
    Table.create
      [ "n (vertices)"; "instances"; "TSP-feasible"; "equivalent"; "rate" ]
  in
  List.iter
    (fun n ->
      let instances = List.init 15 (fun _ -> Tsp_reduction.random rng ~n ~max_cost:9) in
      let feas = List.length (List.filter Tsp_reduction.tsp_feasible instances) in
      let equiv = List.length (List.filter Tsp_reduction.equivalent instances) in
      Table.add_row t
        [ string_of_int n; "15"; string_of_int feas; string_of_int equiv;
          f (float_of_int equiv /. 15.0) ])
    [ 3; 4; 5; 6 ];
  t

let e6_general_mapping () =
  let rng = Rng.create 601 in
  let t =
    Table.create
      [ "n x m"; "Dijkstra"; "Bellman-Ford"; "DAG sweep"; "direct DP"; "agree" ]
  in
  List.iter
    (fun (n, m) ->
      let inst = fully_hetero rng ~n ~m in
      let l1, _ = General_mapping.solve ~algo:General_mapping.Dijkstra inst in
      let l2, _ = General_mapping.solve ~algo:General_mapping.Bellman_ford inst in
      let l3, _ = General_mapping.solve ~algo:General_mapping.Dag_sweep inst in
      let l4, _ = General_mapping.solve_dp inst in
      let agree = F.approx_eq l1 l2 && F.approx_eq l2 l3 && F.approx_eq l3 l4 in
      Table.add_row t
        [ Printf.sprintf "%dx%d" n m; f l1; f l2; f l3; f l4;
          (if agree then "yes" else "NO") ])
    [ (2, 3); (4, 5); (8, 8); (16, 12); (32, 16) ];
  t

let e7_algorithms_1_2 () =
  let rng = Rng.create 701 in
  let t = Table.create [ "problem (Fully Homog.)"; "instances"; "matches"; "rate" ] in
  let run objective_of claimed =
    let total = 30 and matches = ref 0 in
    for _ = 1 to total do
      let inst = fully_homog rng ~n:(1 + Rng.int rng 3) ~m:(2 + Rng.int rng 4) in
      let objective = objective_of inst in
      let mine = claimed inst objective in
      let reference = Exact.solve inst objective in
      match mine, reference with
      | None, None -> incr matches
      | Some a, Some b ->
          if
            F.approx_eq ~eps:1e-6
              (Instance.objective_value objective a.Solution.evaluation)
              (Instance.objective_value objective b.Solution.evaluation)
          then incr matches
      | _ -> ()
    done;
    (total, !matches)
  in
  let total, matches =
    run
      (fun inst -> Instance.Min_failure { max_latency = latency_threshold rng inst })
      (fun inst -> function
        | Instance.Min_failure { max_latency } ->
            Fully_homog.min_failure_for_latency inst ~max_latency
        | _ -> assert false)
  in
  Table.add_row t
    [ "Algorithm 1 (min FP | L)"; string_of_int total; string_of_int matches;
      f (float_of_int matches /. float_of_int total) ];
  let total, matches =
    run
      (fun _ -> Instance.Min_latency { max_failure = Rng.float_range rng 0.01 0.8 })
      (fun inst -> function
        | Instance.Min_latency { max_failure } ->
            Fully_homog.min_latency_for_failure inst ~max_failure
        | _ -> assert false)
  in
  Table.add_row t
    [ "Algorithm 2 (min L | FP)"; string_of_int total; string_of_int matches;
      f (float_of_int matches /. float_of_int total) ];
  t

let e8_algorithms_3_4 () =
  let rng = Rng.create 801 in
  let t =
    Table.create [ "problem (CH + FailHomog)"; "instances"; "matches"; "rate" ]
  in
  let run objective_of claimed =
    let total = 30 and matches = ref 0 in
    for _ = 1 to total do
      let inst =
        comm_homog rng ~n:(1 + Rng.int rng 3) ~m:(2 + Rng.int rng 4) ~fail_homog:true
      in
      let objective = objective_of inst in
      match claimed inst objective, Exact.solve inst objective with
      | None, None -> incr matches
      | Some a, Some b ->
          if
            F.approx_eq ~eps:1e-6
              (Instance.objective_value objective a.Solution.evaluation)
              (Instance.objective_value objective b.Solution.evaluation)
          then incr matches
      | _ -> ()
    done;
    (total, !matches)
  in
  let total, matches =
    run
      (fun inst -> Instance.Min_failure { max_latency = latency_threshold rng inst })
      (fun inst -> function
        | Instance.Min_failure { max_latency } ->
            Comm_homog.min_failure_for_latency inst ~max_latency
        | _ -> assert false)
  in
  Table.add_row t
    [ "Algorithm 3 (min FP | L)"; string_of_int total; string_of_int matches;
      f (float_of_int matches /. float_of_int total) ];
  let total, matches =
    run
      (fun _ -> Instance.Min_latency { max_failure = Rng.float_range rng 0.01 0.8 })
      (fun inst -> function
        | Instance.Min_latency { max_failure } ->
            Comm_homog.min_latency_for_failure inst ~max_failure
        | _ -> assert false)
  in
  Table.add_row t
    [ "Algorithm 4 (min L | FP)"; string_of_int total; string_of_int matches;
      f (float_of_int matches /. float_of_int total) ];
  t

let e9_partition_reduction () =
  let rng = Rng.create 901 in
  let t =
    Table.create [ "m (values)"; "instances"; "partition-feasible"; "equivalent"; "rate" ]
  in
  List.iter
    (fun m ->
      let instances =
        List.init 20 (fun _ -> Partition_reduction.random rng ~m ~max_value:12)
      in
      let feas =
        List.length (List.filter Partition_reduction.partition_feasible instances)
      in
      let equiv = List.length (List.filter Partition_reduction.equivalent instances) in
      Table.add_row t
        [ string_of_int m; "20"; string_of_int feas; string_of_int equiv;
          f (float_of_int equiv /. 20.0) ])
    [ 3; 5; 7; 9 ];
  t

let heuristic_gap_table ~seed ~gen ~title =
  (* Optimality gap of each heuristic against the exhaustive optimum, on the
     min-FP-under-latency problem.  Both solves go through one shared
     [Relpipe_service.Engine]: the rng reset replays the same instances for
     every heuristic row, so after the first row each exhaustive reference
     is a cache hit instead of a fresh enumeration. *)
  let module Engine = Relpipe_service.Engine in
  let module Protocol = Relpipe_service.Protocol in
  let engine = Engine.create ~workers:1 ~cache_capacity:256 () in
  let failure_of_response (r : Protocol.response) =
    match r.Protocol.r_outcome with
    | Protocol.Solved { failure; _ } -> Some failure
    | Protocol.Infeasible | Protocol.Failed _ -> None
  in
  let t =
    Table.create
      [ title; "solved/total"; "mean gap"; "max gap"; "optimal found" ]
  in
  let trials = 20 in
  List.iter
    (fun name ->
      let rng = Rng.create seed in
      let gaps = ref [] in
      let solved = ref 0 and optimal = ref 0 and total = ref 0 in
      for _ = 1 to trials do
        let inst = gen rng in
        let objective =
          Instance.Min_failure { max_latency = latency_threshold rng inst }
        in
        let reference =
          failure_of_response
            (Engine.solve_instance engine ~method_:Solver.Exact_enum inst
               objective)
        in
        match reference with
        | None -> () (* genuinely infeasible: skip *)
        | Some reference ->
            incr total;
            let heuristic =
              failure_of_response
                (Engine.solve_instance engine
                   ~method_:(Solver.Heuristic name) inst objective)
            in
            (match heuristic with
            | None -> ()
            | Some failure ->
                incr solved;
                let gap = failure -. reference in
                gaps := gap :: !gaps;
                if F.approx_eq ~eps:1e-6 failure reference then incr optimal)
      done;
      let gaps = Array.of_list !gaps in
      Table.add_row t
        [
          Heuristics.name_to_string name;
          Printf.sprintf "%d/%d" !solved !total;
          (if Array.length gaps = 0 then "-" else f (Stats.mean gaps));
          (if Array.length gaps = 0 then "-"
           else f (Array.fold_left Float.max 0.0 gaps));
          Printf.sprintf "%d/%d" !optimal !solved;
        ])
    Heuristics.all_names;
  t

let e10_open_case () =
  heuristic_gap_table ~seed:1001
    ~gen:(fun rng ->
      comm_homog rng ~n:(1 + Rng.int rng 3) ~m:(2 + Rng.int rng 3) ~fail_homog:false)
    ~title:"heuristic (CH + FailHetero, open)"

let e11_np_hard_case () =
  heuristic_gap_table ~seed:1101
    ~gen:(fun rng -> fully_hetero rng ~n:(1 + Rng.int rng 3) ~m:(2 + Rng.int rng 3))
    ~title:"heuristic (Fully Hetero, NP-hard)"

let e12_simulator () =
  let rng = Rng.create 1201 in
  let t =
    Table.create
      [ "scenario"; "analytic 1-FP"; "empirical rate"; "analytic latency";
        "max simulated"; "within bound" ]
  in
  let row name inst mapping =
    let r =
      Relpipe_sim.Montecarlo.estimate rng inst mapping ~trials:20_000
        ~policy:Relpipe_sim.Trial.Optimistic
    in
    let bounded =
      r.Relpipe_sim.Montecarlo.successes = 0
      || F.leq ~eps:1e-9 r.Relpipe_sim.Montecarlo.max_latency
           r.Relpipe_sim.Montecarlo.analytic_latency
    in
    Table.add_row t
      [
        name;
        f r.Relpipe_sim.Montecarlo.analytic_success;
        f r.Relpipe_sim.Montecarlo.success_rate;
        f r.Relpipe_sim.Montecarlo.analytic_latency;
        (if r.Relpipe_sim.Montecarlo.successes = 0 then "-"
         else f r.Relpipe_sim.Montecarlo.max_latency);
        (if bounded then "yes" else "NO");
      ]
  in
  let fig5 = Relpipe_workload.Scenarios.fig5 () in
  row "fig5 split mapping" fig5 (Relpipe_workload.Scenarios.fig5_split ());
  row "fig5 single interval" fig5 (Relpipe_workload.Scenarios.fig5_single_two_fast ());
  let jpeg = Relpipe_workload.Jpeg.default_instance ~m:6 in
  let n = 7 and m = 6 in
  row "jpeg, everything replicated" jpeg
    (Mapping.single_interval ~n ~m (List.init m Fun.id));
  (match
     Solver.solve jpeg
       (Instance.Min_failure
          { max_latency = 1.5 *. (Solution.of_mapping jpeg
               (Mapping.single_interval ~n ~m [ Mono.fastest_proc jpeg.Instance.platform ])).Solution.evaluation.Instance.latency })
   with
  | Some s -> row "jpeg, solver choice" jpeg s.Solution.mapping
  | None -> ());
  t

let e13_pareto () =
  let t =
    Table.create
      [ "scenario"; "threshold L"; "latency"; "failure prob"; "intervals"; "replicas" ]
  in
  let add name inst solver count =
    List.iter
      (fun p ->
        Table.add_row t
          [
            name;
            f p.Pareto.threshold;
            f (latency_of p.Pareto.solution);
            f (failure_of p.Pareto.solution);
            string_of_int (Mapping.num_intervals p.Pareto.solution.Solution.mapping);
            string_of_int
              (List.length (Mapping.used_procs p.Pareto.solution.Solution.mapping));
          ])
      (Pareto.front_with solver inst ~count)
  in
  add "fig5 (exact)" (Relpipe_workload.Scenarios.fig5 ())
    (fun inst objective -> Exact.solve inst objective)
    8;
  add "jpeg m=6 (solver)" (Relpipe_workload.Jpeg.default_instance ~m:6)
    (fun inst objective -> Solver.solve inst objective)
    6;
  t

let e14_lemma1 () =
  let t =
    Table.create
      [ "platform class"; "instances"; "single interval optimal"; "rate" ]
  in
  let run name gen =
    let rng = Rng.create 1401 in
    let total = 25 and matches = ref 0 in
    for _ = 1 to total do
      let inst = gen rng in
      let objective =
        Instance.Min_failure { max_latency = latency_threshold rng inst }
      in
      match Exact.solve_single_interval inst objective, Exact.solve inst objective with
      | None, None -> incr matches
      | Some a, Some b ->
          if F.approx_eq ~eps:1e-6 (failure_of a) (failure_of b) then incr matches
      | _ -> ()
    done;
    Table.add_row t
      [ name; string_of_int total; string_of_int !matches;
        f (float_of_int !matches /. float_of_int total) ]
  in
  run "Fully Homogeneous (Lemma 1: always)" (fun rng ->
      fully_homog rng ~n:(1 + Rng.int rng 3) ~m:(2 + Rng.int rng 3));
  run "CH + Failure Homog (Lemma 1: always)" (fun rng ->
      comm_homog rng ~n:(1 + Rng.int rng 3) ~m:(2 + Rng.int rng 3) ~fail_homog:true);
  run "CH + Failure Hetero (can break)" (fun rng ->
      comm_homog rng ~n:(1 + Rng.int rng 3) ~m:(2 + Rng.int rng 3) ~fail_homog:false);
  (* The paper's designed counter-example. *)
  let inst = Relpipe_workload.Scenarios.fig5 () in
  let objective = Instance.Min_failure { max_latency = 22.0 } in
  let single = Option.get (Exact.solve_single_interval inst objective) in
  let full = Option.get (Exact.solve inst objective) in
  Table.add_row t
    [
      "fig5 counter-example";
      "1";
      (if F.approx_eq ~eps:1e-6 (failure_of single) (failure_of full) then "1"
       else Printf.sprintf "0 (%.3g vs %.3g)" (failure_of single) (failure_of full));
      "0 expected";
    ];
  t

let e15_tri_criteria () =
  (* Sweep the period bound on Fig. 5 at the paper's latency threshold:
     tightening throughput requirements forces smaller replication sets
     and hence worse reliability. *)
  let inst = Relpipe_workload.Scenarios.fig5 () in
  let t =
    Table.create
      [ "period bound (fig5, L<=22)"; "latency"; "period"; "failure"; "mapping shape" ]
  in
  List.iter
    (fun max_period ->
      let constraints = { Tri.max_latency = 22.0; max_period } in
      match Tri.exact_min_failure inst constraints with
      | None -> Table.add_row t [ f max_period; "-"; "-"; "-"; "infeasible" ]
      | Some s ->
          Table.add_row t
            [
              f max_period;
              f s.Tri.evaluation.Tri.latency;
              f s.Tri.evaluation.Tri.period;
              f s.Tri.evaluation.Tri.failure;
              Format.asprintf "%a" Mapping.pp s.Tri.mapping;
            ])
    [ Float.max_float; 20.0; 12.0; 8.0; 4.0; 2.0 ];
  t

let e16_bb_ablation () =
  let rng = Rng.create 1601 in
  let t =
    Table.create
      [ "n x m"; "mapping space"; "B&B nodes"; "B&B evaluated"; "agree" ]
  in
  List.iter
    (fun (n, m) ->
      let inst = fully_hetero rng ~n ~m in
      let max_latency = latency_threshold rng inst in
      let objective = Instance.Min_failure { max_latency } in
      let space = Exact.count_mappings ~n ~m () in
      let bb, stats = Bb.solve_with_stats inst objective in
      let reference = Exact.solve inst objective in
      let agree =
        match bb, reference with
        | None, None -> true
        | Some a, Some b ->
            F.approx_eq ~eps:1e-6 (failure_of a) (failure_of b)
        | _ -> false
      in
      Table.add_row t
        [
          Printf.sprintf "%dx%d" n m;
          string_of_int space;
          string_of_int stats.Bb.nodes;
          string_of_int stats.Bb.evaluated;
          (if agree then "yes" else "NO");
        ])
    [ (2, 3); (3, 4); (4, 5); (5, 5) ];
  t

let e16_optima () =
  (* The same four instances as {!e16_bb_ablation} (same seed, same rng
     consumption order), but reporting only the solver's *answers*: the
     optimal failure probability, its latency, and the winning mapping.
     Node counts in e16 are implementation-dependent (pruning strength
     may change as the search evolves); these optima must not.  Floats
     are printed with %.17g so the snapshot pins them bit-for-bit. *)
  let rng = Rng.create 1601 in
  let t =
    Table.create [ "n x m"; "latency bound"; "optimal FP"; "latency"; "mapping" ]
  in
  List.iter
    (fun (n, m) ->
      let inst = fully_hetero rng ~n ~m in
      let max_latency = latency_threshold rng inst in
      let objective = Instance.Min_failure { max_latency } in
      match Bb.solve inst objective with
      | None ->
          Table.add_row t
            [ Printf.sprintf "%dx%d" n m; Printf.sprintf "%.17g" max_latency;
              "infeasible"; "-"; "-" ]
      | Some s ->
          let e = s.Solution.evaluation in
          Table.add_row t
            [
              Printf.sprintf "%dx%d" n m;
              Printf.sprintf "%.17g" max_latency;
              Printf.sprintf "%.17g" e.Instance.failure;
              Printf.sprintf "%.17g" e.Instance.latency;
              Format.asprintf "%a" Mapping.pp s.Solution.mapping;
            ])
    [ (2, 3); (3, 4); (4, 5); (5, 5) ];
  t

let e17_steady_state () =
  let rng = Rng.create 1701 in
  let t =
    Table.create
      [ "instance"; "K"; "analytic period"; "estimated period"; "makespan";
        "latency + (K-1)*period"; "bounded" ]
  in
  let row name inst mapping k =
    let r = Relpipe_sim.Steady.run inst mapping ~datasets:k in
    let bound =
      r.Relpipe_sim.Steady.analytic_latency
      +. (float_of_int (k - 1) *. r.Relpipe_sim.Steady.analytic_period)
    in
    Table.add_row t
      [
        name;
        string_of_int k;
        f r.Relpipe_sim.Steady.analytic_period;
        f r.Relpipe_sim.Steady.estimated_period;
        f r.Relpipe_sim.Steady.makespan;
        f bound;
        (if
           F.leq ~eps:1e-6 r.Relpipe_sim.Steady.makespan bound
           && F.leq ~eps:1e-6 r.Relpipe_sim.Steady.estimated_period
                r.Relpipe_sim.Steady.analytic_period
         then "yes"
         else "NO");
      ]
  in
  row "fig5 split" (Relpipe_workload.Scenarios.fig5 ())
    (Relpipe_workload.Scenarios.fig5_split ())
    100;
  row "fig34 split" (Relpipe_workload.Scenarios.fig34 ())
    (Relpipe_workload.Scenarios.fig34_split ())
    100;
  let inst = fully_hetero rng ~n:6 ~m:8 in
  let mapping =
    Mapping.make ~n:6 ~m:8
      [
        { Mapping.first = 1; last = 3; procs = [ 0; 1; 2 ] };
        { Mapping.first = 4; last = 6; procs = [ 3; 4 ] };
      ]
  in
  row "random FH n=6 m=8" inst mapping 200;
  t

let e18_round_robin () =
  (* Same resources, increasing round-robin split: the period improves,
     the failure probability degrades, latency is stable. *)
  let rng = Rng.create 1801 in
  let inst = comm_homog rng ~n:2 ~m:8 ~fail_homog:false in
  let mapping = Mapping.single_interval ~n:2 ~m:8 (List.init 8 Fun.id) in
  let t =
    Table.create [ "q (groups)"; "latency"; "period"; "failure"; "speedup" ]
  in
  let base_period = ref None in
  List.iter
    (fun q ->
      match Round_robin.partition_groups mapping ~q with
      | None -> Table.add_row t [ string_of_int q; "-"; "-"; "-"; "-" ]
      | Some rr ->
          let period = Round_robin.period inst rr in
          if !base_period = None then base_period := Some period;
          Table.add_row t
            [
              string_of_int q;
              f (Round_robin.latency inst rr);
              f period;
              f (Round_robin.failure inst rr);
              f (Option.get !base_period /. period);
            ])
    [ 1; 2; 4; 8 ];
  t

let e19_interval_vs_general () =
  let rng = Rng.create 1901 in
  let t =
    Table.create
      [ "n x m"; "instances"; "mean gap"; "max gap"; "interval = general" ]
  in
  List.iter
    (fun (n, m) ->
      let trials = 15 in
      let gaps =
        Array.init trials (fun _ ->
            Interval_exact.interval_vs_general_gap (fully_hetero rng ~n ~m))
      in
      let equal_count =
        Array.fold_left
          (fun acc g -> if F.approx_eq ~eps:1e-9 g 1.0 then acc + 1 else acc)
          0 gaps
      in
      Table.add_row t
        [
          Printf.sprintf "%dx%d" n m;
          string_of_int trials;
          f (Stats.mean gaps);
          f (Array.fold_left Float.max 1.0 gaps);
          Printf.sprintf "%d/%d" equal_count trials;
        ])
    [ (3, 4); (5, 6); (8, 8); (10, 10) ];
  t

let e20_mission_scaling () =
  (* A two-tier platform specified by failure *rates*: as the mission gets
     longer every processor becomes less reliable, and the optimal mapping
     under a fixed latency budget enrolls more replicas. *)
  let pipeline =
    Relpipe_workload.App_gen.uniform ~n:3 ~work:20.0 ~data:5.0
  in
  let base =
    Relpipe_workload.Plat_gen.two_tier ~m_slow:2 ~m_fast:4 ~slow_speed:5.0
      ~fast_speed:20.0 ~slow_failure:0.02 ~fast_failure:0.15 ~bandwidth:10.0
  in
  let t =
    Table.create
      [ "mission factor"; "max fp_u"; "optimal FP"; "replicas"; "intervals" ]
  in
  List.iter
    (fun factor ->
      let platform = Failure_rate.scale_mission base ~factor in
      let inst = Instance.make pipeline platform in
      let max_latency =
        2.0
        *. Latency.of_mapping pipeline platform
             (Mapping.single_interval ~n:3 ~m:6 [ Mono.fastest_proc platform ])
      in
      match Exact.solve inst (Instance.Min_failure { max_latency }) with
      | None -> Table.add_row t [ f factor; "-"; "-"; "-"; "-" ]
      | Some s ->
          let worst_fp =
            Array.fold_left Float.max 0.0 (Platform.failures platform)
          in
          Table.add_row t
            [
              f factor;
              f worst_fp;
              f (failure_of s);
              string_of_int (List.length (Mapping.used_procs s.Solution.mapping));
              string_of_int (Mapping.num_intervals s.Solution.mapping);
            ])
    [ 0.5; 1.0; 2.0; 4.0; 8.0 ];
  t

let e21_goodput () =
  let inst = Relpipe_workload.Scenarios.fig5 () in
  let platform = inst.Instance.platform in
  let mission = 500.0 in
  let rates =
    Array.init (Platform.size platform) (fun u ->
        Failure_rate.rate_of_fp ~fp:(Platform.failure platform u) ~mission)
  in
  let t =
    Table.create
      [ "mapping (fig5, mission 500)"; "analytic 1-FP"; "mean goodput";
        "p10 goodput"; "missions survived" ]
  in
  let row name mapping =
    let rng = Rng.create 2101 in
    let trials = 2000 in
    let goodputs =
      Array.init trials (fun _ ->
          (Relpipe_sim.Lifetime.run rng inst mapping ~rates ~mission)
            .Relpipe_sim.Lifetime.goodput)
    in
    let survived =
      Array.fold_left
        (fun acc g -> if g >= 1.0 then acc + 1 else acc)
        0 goodputs
    in
    Table.add_row t
      [
        name;
        f (Failure.success platform mapping);
        f (Stats.mean goodputs);
        f (Stats.quantile goodputs 0.1);
        Printf.sprintf "%d/%d" survived trials;
      ]
  in
  row "split (reliability-optimal)" (Relpipe_workload.Scenarios.fig5_split ());
  row "single interval, 2 fast" (Relpipe_workload.Scenarios.fig5_single_two_fast ());
  row "single fast processor" (Mapping.single_interval ~n:2 ~m:11 [ 1 ]);
  t

let e22_contiguous () =
  let t =
    Table.create
      [ "family (CH + FailHetero)"; "instances"; "lossless"; "mean excess FP";
        "max excess FP" ]
  in
  let run name gen =
    let rng = Rng.create 2201 in
    let trials = 25 in
    let lossless = ref 0 and total = ref 0 in
    let gaps = ref [] in
    for _ = 1 to trials do
      let inst = gen rng in
      let objective =
        Instance.Min_failure { max_latency = latency_threshold rng inst }
      in
      match Exact.solve inst objective with
      | None -> ()
      | Some reference -> (
          incr total;
          match Contiguous.solve inst objective with
          | None -> gaps := 1.0 :: !gaps (* found nothing: worst case *)
          | Some s ->
              let gap = failure_of s -. failure_of reference in
              gaps := gap :: !gaps;
              if F.approx_eq ~eps:1e-6 (failure_of s) (failure_of reference)
              then incr lossless)
    done;
    let gaps = Array.of_list !gaps in
    Table.add_row t
      [
        name;
        string_of_int !total;
        Printf.sprintf "%d/%d" !lossless !total;
        (if Array.length gaps = 0 then "-" else f (Stats.mean gaps));
        (if Array.length gaps = 0 then "-"
         else f (Array.fold_left Float.max 0.0 gaps));
      ]
  in
  run "uniform failures" (fun rng ->
      comm_homog rng ~n:(1 + Rng.int rng 3) ~m:(2 + Rng.int rng 3)
        ~fail_homog:false);
  run "speed-correlated failures" (fun rng ->
      Instance.make
        (random_pipeline rng ~n:(1 + Rng.int rng 3))
        (Relpipe_workload.Plat_gen.speed_correlated_failures rng
           ~m:(2 + Rng.int rng 3) ~speed:(1.0, 10.0) ~failure:(0.05, 0.7)
           ~bandwidth:4.0));
  t

let e23_comm_model () =
  let t =
    Table.create
      [ "mapping"; "one-port latency (paper)"; "multiport latency";
        "replication penalty" ]
  in
  let row name inst mapping =
    let { Instance.pipeline; platform } = inst in
    Table.add_row t
      [
        name;
        f (Comm_model.latency Comm_model.One_port pipeline platform mapping);
        f (Comm_model.latency Comm_model.Multiport pipeline platform mapping);
        f (Comm_model.replication_penalty pipeline platform mapping);
      ]
  in
  let fig5 = Relpipe_workload.Scenarios.fig5 () in
  row "fig5 split (10 replicas)" fig5 (Relpipe_workload.Scenarios.fig5_split ());
  row "fig5 single, 2 fast" fig5 (Relpipe_workload.Scenarios.fig5_single_two_fast ());
  row "fig5 everything on all procs" fig5
    (Mapping.single_interval ~n:2 ~m:11 (List.init 11 Fun.id));
  let jpeg = Relpipe_workload.Jpeg.default_instance ~m:6 in
  row "jpeg replicated everywhere" jpeg
    (Mapping.single_interval ~n:7 ~m:6 (List.init 6 Fun.id));
  t

let e24_effort_sweep () =
  let t =
    Table.create
      [ "iterations (annealing)"; "instances"; "optimal found"; "mean gap" ]
  in
  List.iter
    (fun iterations ->
      let rng = Rng.create 2401 in
      let trials = 15 in
      let optimal = ref 0 and total = ref 0 in
      let gaps = ref [] in
      for _ = 1 to trials do
        let inst =
          fully_hetero rng ~n:(2 + Rng.int rng 2) ~m:(3 + Rng.int rng 2)
        in
        let objective =
          Instance.Min_failure { max_latency = latency_threshold rng inst }
        in
        match Exact.solve inst objective with
        | None -> ()
        | Some reference -> (
            incr total;
            match Heuristics.annealing ~iterations inst objective with
            | None -> gaps := 1.0 :: !gaps
            | Some s ->
                let gap = failure_of s -. failure_of reference in
                gaps := gap :: !gaps;
                if F.approx_eq ~eps:1e-6 (failure_of s) (failure_of reference)
                then incr optimal)
      done;
      let gaps = Array.of_list !gaps in
      Table.add_row t
        [
          string_of_int iterations;
          string_of_int !total;
          Printf.sprintf "%d/%d" !optimal !total;
          (if Array.length gaps = 0 then "-" else f (Stats.mean gaps));
        ])
    [ 100; 500; 2000; 8000; 32000 ];
  t

let all () =
  [
    ("E1  Fig. 3/4 worked example (latency)", e1_fig34 ());
    ("E2  Fig. 5 worked example (bi-criteria)", e2_fig5 ());
    ("E3  Theorem 1: min FP is replicate-everything", e3_theorem1 ());
    ("E4  Theorem 2: min latency on Comm. Homogeneous", e4_theorem2 ());
    ("E5  Theorem 3: TSP reduction equivalence", e5_tsp_reduction ());
    ("E6  Theorem 4: general mappings by shortest path", e6_general_mapping ());
    ("E7  Algorithms 1/2 vs exhaustive optimum", e7_algorithms_1_2 ());
    ("E8  Algorithms 3/4 vs exhaustive optimum", e8_algorithms_3_4 ());
    ("E9  Theorem 7: 2-PARTITION reduction equivalence", e9_partition_reduction ());
    ("E10 Open case: CH + Failure Heterogeneous heuristics", e10_open_case ());
    ("E11 NP-hard case: Fully Heterogeneous heuristics", e11_np_hard_case ());
    ("E12 Simulator vs analytic model", e12_simulator ());
    ("E13 Latency/reliability Pareto fronts", e13_pareto ());
    ("E14 Lemma 1: single-interval optimality", e14_lemma1 ());
    ("E15 Tri-criteria: reliability under latency+period bounds", e15_tri_criteria ());
    ("E16 Ablation: branch-and-bound vs flat enumeration", e16_bb_ablation ());
    ("E17 Steady-state simulation vs analytic period", e17_steady_state ());
    ("E18 Round-robin replication: throughput vs reliability", e18_round_robin ());
    ("E19 Open problem 4.1: interval vs general mapping gap", e19_interval_vs_general ());
    ("E20 Mission-length scaling (failure-rate view)", e20_mission_scaling ());
    ("E21 Goodput under mid-stream failures", e21_goodput ());
    ("E22 Speed-contiguity hypothesis on the open case", e22_contiguous ());
    ("E23 One-port vs multiport communication-model ablation", e23_comm_model ());
    ("E24 Heuristic effort sweep (annealing iterations)", e24_effort_sweep ());
  ]

let print_all () =
  List.iter
    (fun (title, table) ->
      print_endline title;
      print_endline (String.make (String.length title) '=');
      Table.print table;
      print_newline ())
    (all ())
