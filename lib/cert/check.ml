open Relpipe_model
module F = Relpipe_util.Float_cmp
module Obs = Relpipe_obs.Obs

let dp_max_procs = 14

exception Reject of string

let reject fmt = Printf.ksprintf (fun s -> raise (Reject s)) fmt
let bits_eq a b = Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)

(* Flat snapshot of the instance, built from model accessors only.  Every
   price below evaluates the paper's equations in the repo's canonical
   operand order (processors ascending, communication targets descending,
   left-associated sums), which is what makes comparisons against
   recorded numbers bit-exact. *)
type env = {
  n : int;
  m : int;
  wp : float array;  (* work prefix sums *)
  deltas : float array;
  spd : float array;
  fp : float array;
  bw_in : float array;
  bw_out : float array;
  bw_pp : float array;  (* u -> v at u*m+v, diagonal unused *)
  rem : float array;  (* remaining-work bound after stage d *)
}

let make_env instance =
  let { Instance.pipeline; platform } = instance in
  let n = Pipeline.length pipeline and m = Platform.size platform in
  let wp = Pipeline.work_prefixes pipeline in
  let deltas = Array.init (n + 1) (Pipeline.delta pipeline) in
  let spd = Array.init m (Platform.speed platform) in
  let fp = Array.init m (Platform.failure platform) in
  let bw_in =
    Array.init m (fun u ->
        Platform.bandwidth platform Platform.Pin (Platform.Proc u))
  in
  let bw_out =
    Array.init m (fun u ->
        Platform.bandwidth platform (Platform.Proc u) Platform.Pout)
  in
  let bw_pp = Array.make (m * m) 0.0 in
  for u = 0 to m - 1 do
    for v = 0 to m - 1 do
      if u <> v then
        bw_pp.((u * m) + v) <-
          Platform.bandwidth platform (Platform.Proc u) (Platform.Proc v)
    done
  done;
  let max_speed = Array.fold_left Float.max 0.0 (Platform.speeds platform) in
  let rem = Array.make (n + 1) 0.0 in
  for d = 0 to n - 1 do
    rem.(d) <- (wp.(n) -. wp.(d)) /. max_speed
  done;
  { n; m; wp; deltas; spd; fp; bw_in; bw_out; bw_pp; rem }

(* ------------------------------------------------------------------ *)
(* Pricing (Section 2 equations)                                       *)
(* ------------------------------------------------------------------ *)

let input_cost env mask =
  let acc = ref 0.0 in
  for u = 0 to env.m - 1 do
    if mask land (1 lsl u) <> 0 then
      acc := !acc +. (env.deltas.(0) /. env.bw_in.(u))
  done;
  !acc

(* log1p (-. pi) of a replication set, pi in log space (Eq. 1). *)
let survival_term env mask =
  let log_prod = ref 0.0 in
  for u = 0 to env.m - 1 do
    if mask land (1 lsl u) <> 0 then
      log_prod := !log_prod +. Float.log env.fp.(u)
  done;
  Float.log1p (-.Float.exp !log_prod)

let min_speed env mask =
  let acc = ref Float.infinity in
  for u = 0 to env.m - 1 do
    if mask land (1 lsl u) <> 0 then acc := Float.min !acc env.spd.(u)
  done;
  !acc

let pending_bound env (first, last, mask) =
  (env.wp.(last) -. env.wp.(first - 1)) /. min_speed env mask

(* The Eq. 2 term of a closed interval given its successor's replication
   set; targets descending. *)
let interval_term env (first, last, pmask) next_mask =
  let work = env.wp.(last) -. env.wp.(first - 1) in
  let out_size = env.deltas.(last) in
  let acc = ref Float.neg_infinity in
  for u = 0 to env.m - 1 do
    if pmask land (1 lsl u) <> 0 then begin
      let compute = work /. env.spd.(u) in
      let comm = ref 0.0 in
      let bw_row = u * env.m in
      for v = env.m - 1 downto 0 do
        if next_mask land (1 lsl v) <> 0 then
          comm := !comm +. (out_size /. env.bw_pp.(bw_row + v))
      done;
      acc := Float.max !acc (compute +. !comm)
    end
  done;
  !acc

let interval_term_out env (first, last, pmask) =
  let work = env.wp.(last) -. env.wp.(first - 1) in
  let out_size = env.deltas.(last) in
  let acc = ref Float.neg_infinity in
  for u = 0 to env.m - 1 do
    if pmask land (1 lsl u) <> 0 then begin
      let compute = work /. env.spd.(u) in
      let comm = 0.0 +. (out_size /. env.bw_out.(u)) in
      acc := Float.max !acc (compute +. comm)
    end
  done;
  !acc

(* ------------------------------------------------------------------ *)
(* Canonical node keys                                                 *)
(* ------------------------------------------------------------------ *)

let mask_of_procs env procs =
  let rec go prev mask = function
    | [] -> mask
    | p :: rest ->
        if p < 0 || p >= env.m then
          reject "processor %d out of range in a path" p
        else if p <= prev then reject "path processors not strictly ascending"
        else go p (mask lor (1 lsl p)) rest
  in
  go (-1) 0 procs

let add_iv_key buf (first, last, mask) =
  Buffer.add_string buf (string_of_int first);
  Buffer.add_char buf '-';
  Buffer.add_string buf (string_of_int last);
  Buffer.add_char buf ':';
  let sep = ref false in
  let u = ref 0 in
  let mask = ref mask in
  while !mask <> 0 do
    if !mask land 1 <> 0 then begin
      if !sep then Buffer.add_char buf ',';
      sep := true;
      Buffer.add_string buf (string_of_int !u)
    end;
    incr u;
    mask := !mask lsr 1
  done

let iv_key triple =
  let buf = Buffer.create 16 in
  add_iv_key buf triple;
  Buffer.contents buf

let key_of_triples = function
  | [] -> "-"
  | triples ->
      let buf = Buffer.create 32 in
      List.iteri
        (fun i triple ->
          if i > 0 then Buffer.add_char buf '|';
          add_iv_key buf triple)
        triples;
      Buffer.contents buf

let triples_of_intervals env ivs =
  List.map
    (fun { Mapping.first; last; procs } -> (first, last, mask_of_procs env procs))
    ivs

(* Non-empty submasks of [set] in increasing mask order — the enumeration
   order of Bitset.iter_nonempty_subsets, which the search follows. *)
let iter_submasks f set =
  if set <> 0 then begin
    let s = ref (set land - set) in
    let continue = ref true in
    while !continue do
      f !s;
      let next = ((!s lor lnot set) + 1) land set in
      if next = 0 then continue := false else s := next
    done
  end

(* ------------------------------------------------------------------ *)
(* Branch-and-bound transcripts                                        *)
(* ------------------------------------------------------------------ *)

let check_bb env ~objective ~claim ~nodes =
  let table = Hashtbl.create (2 * List.length nodes) in
  List.iter
    (fun { Cert.path; status } ->
      let key = key_of_triples (triples_of_intervals env path) in
      if Hashtbl.mem table key then reject "duplicate transcript entry %s" key;
      Hashtbl.add table key status)
    nodes;
  let full_m = (1 lsl env.m) - 1 in
  (* The incumbent fold, replayed with the model's own acceptance rule in
     the search's exact child order: what survives is, bit for bit, what
     the canonical solver returns. *)
  let best = ref None in
  let incumbent_objective () =
    match !best with
    | None -> Float.infinity
    | Some (evaluation, _) -> Instance.objective_value objective evaluation
  in
  let visited = ref 0 in
  let rec walk ~key ~rpath ~next_stage ~used ~pending ~lc ~ls =
    let status =
      match Hashtbl.find_opt table key with
      | Some s -> s
      | None -> reject "missing transcript entry for node %s" key
    in
    incr visited;
    let pf = -.Float.expm1 ls in
    let pending_lb =
      match pending with None -> 0.0 | Some iv -> pending_bound env iv
    in
    let lb = (lc +. pending_lb) +. env.rem.(next_stage - 1) in
    match status with
    | Cert.Pruned { reason; latency_lb; partial_failure } -> (
        if not (bits_eq latency_lb lb && bits_eq partial_failure pf) then
          reject "recorded bounds at %s do not replay" key;
        match (reason, objective) with
        | Cert.Threshold, Instance.Min_failure { max_latency } ->
            if F.leq lb max_latency then
              reject "threshold cut at %s is not justified" key
        | Cert.Threshold, Instance.Min_latency { max_failure } ->
            if F.leq pf max_failure then
              reject "threshold cut at %s is not justified" key
        | Cert.Dominated, Instance.Min_latency _ ->
            if not (lb >= incumbent_objective ()) then
              reject "dominated cut at %s is not justified" key
        | Cert.Dominated, Instance.Min_failure _ ->
            if not (pf >= incumbent_objective ()) then
              reject "dominated cut at %s is not justified" key)
    | Cert.Evaluated { latency; failure } -> (
        if next_stage <= env.n then
          reject "evaluated node %s does not cover the pipeline" key;
        match pending with
        | None -> reject "evaluated root of an empty pipeline"
        | Some iv ->
            let total = lc +. interval_term_out env iv in
            if not (bits_eq latency total && bits_eq failure pf) then
              reject "recorded evaluation at %s does not replay" key;
            let evaluation = { Instance.latency = total; failure = pf } in
            if Instance.feasible objective evaluation then begin
              match !best with
              | Some (b, _)
                when not (Instance.better objective evaluation b) ->
                  ()
              | _ -> best := Some (evaluation, List.rev rpath)
            end)
    | Cert.Expanded ->
        if next_stage > env.n then
          reject "expanded node %s already covers the pipeline" key;
        let unused = full_m land lnot used in
        for e = next_stage to env.n do
          iter_submasks
            (fun sub ->
              let iv = (next_stage, e, sub) in
              let lc' =
                match pending with
                | None -> lc +. input_cost env sub
                | Some prev -> lc +. interval_term env prev sub
              in
              let ls' = ls +. survival_term env sub in
              let ckey =
                if key = "-" then iv_key iv else key ^ "|" ^ iv_key iv
              in
              walk ~key:ckey ~rpath:(iv :: rpath) ~next_stage:(e + 1)
                ~used:(used lor sub) ~pending:(Some iv) ~lc:lc' ~ls:ls')
            unused
        done
  in
  walk ~key:"-" ~rpath:[] ~next_stage:1 ~used:0 ~pending:None ~lc:0.0 ~ls:0.0;
  if !visited <> Hashtbl.length table then
    reject "%d transcript entries are unreachable"
      (Hashtbl.length table - !visited);
  (match (claim, !best) with
  | Cert.Infeasible, None -> ()
  | Cert.Infeasible, Some _ ->
      reject "claim says infeasible but the replay finds a feasible mapping"
  | Cert.Feasible _, None ->
      reject "claim says feasible but the replay finds no feasible mapping"
  | Cert.Feasible { latency; failure; mapping }, Some (evaluation, triples) ->
      if
        not
          (bits_eq latency evaluation.Instance.latency
          && bits_eq failure evaluation.Instance.failure)
      then reject "claimed optimum does not match the replayed incumbent";
      if triples_of_intervals env mapping <> triples then
        reject "claimed mapping does not match the replayed incumbent");
  Hashtbl.length table

(* ------------------------------------------------------------------ *)
(* Interval-DP potential tables                                        *)
(* ------------------------------------------------------------------ *)

let check_dp env ~latency:claimed ~mapping ~cells =
  if env.m > dp_max_procs then
    reject "interval-dp certificate beyond the %d-processor cap" dp_max_procs;
  if not (Float.is_finite claimed) then reject "claimed latency is not finite";
  let masks = 1 lsl env.m in
  let y = Array.make ((env.n + 1) * env.m * masks) Float.infinity in
  let idx e u mask = (((e * env.m) + u) * masks) + mask in
  List.iter
    (fun { Cert.e; u; mask; value } ->
      if
        e < 1 || e > env.n || u < 0 || u >= env.m || mask < 1 || mask >= masks
        || mask land (1 lsl u) = 0
      then reject "cell (%d,%d,%d) out of range" e u mask;
      if not (Float.is_finite value) then
        reject "cell (%d,%d,%d) is not finite" e u mask;
      if Float.is_finite y.(idx e u mask) then
        reject "duplicate cell (%d,%d,%d)" e u mask;
      y.(idx e u mask) <- value)
    cells;
  (* Base: every singleton cell must be present and at most the
     first-interval cost, or some chain escapes the potential. *)
  for v = 0 to env.m - 1 do
    let input = env.deltas.(0) /. env.bw_in.(v) in
    let sv = env.spd.(v) in
    for e = 1 to env.n do
      let base = input +. ((env.wp.(e) -. env.wp.(0)) /. sv) in
      if not (y.(idx e v (1 lsl v)) <= base) then
        reject "base cell (%d,%d,%d) exceeds the first-interval cost" e v
          (1 lsl v)
    done
  done;
  (* Edges: the triangle inequality against every recomputed relaxation.
     A finite source pointing at a missing target is how a dropped
     admission surfaces: the target's potential is infinite. *)
  for e = 1 to env.n - 1 do
    let delta_e = env.deltas.(e) in
    let wp_e = env.wp.(e) in
    for u = 0 to env.m - 1 do
      let bw_row = u * env.m in
      for mask = 1 to masks - 1 do
        let base = y.(idx e u mask) in
        if Float.is_finite base then
          for v = 0 to env.m - 1 do
            if mask land (1 lsl v) = 0 then begin
              let comm = delta_e /. env.bw_pp.(bw_row + v) in
              let nmask = mask lor (1 lsl v) in
              let sv = env.spd.(v) in
              let base_comm = base +. comm in
              for e' = e + 1 to env.n do
                let cand = base_comm +. ((env.wp.(e') -. wp_e) /. sv) in
                if not (y.(idx e' v nmask) <= cand) then
                  reject
                    "relaxation edge (%d,%d,%d) -> (%d,%d,%d) is violated" e u
                    mask e' v nmask
              done
            end
          done
      done
    done
  done;
  (* Final: every complete cell closed against the output link costs at
     least the claim. *)
  for u = 0 to env.m - 1 do
    let out = env.deltas.(env.n) /. env.bw_out.(u) in
    for mask = 1 to masks - 1 do
      let v = y.(idx env.n u mask) in
      if Float.is_finite v && not (v +. out >= claimed) then
        reject "cell (%d,%d,%d) closes below the claimed latency" env.n u mask
    done
  done;
  (* The claim mapping must be a valid unreplicated interval chain and
     re-price, bit for bit, to the claimed latency: the upper bound that
     meets the potential's lower bound. *)
  let rec structure prev_last used = function
    | [] -> if prev_last <> env.n then reject "claim mapping stops early"
    | { Mapping.first; last; procs } :: rest ->
        if first <> prev_last + 1 || last < first || last > env.n then
          reject "claim mapping is not a partition into intervals";
        (match procs with
        | [ p ] ->
            if p < 0 || p >= env.m then
              reject "claim mapping processor %d out of range" p;
            if used land (1 lsl p) <> 0 then
              reject "claim mapping reuses processor %d" p;
            structure last (used lor (1 lsl p)) rest
        | _ -> reject "claim mapping replicates an interval")
  in
  structure 0 0 mapping;
  let total =
    match mapping with
    | [] -> reject "empty claim mapping"
    | { Mapping.last = l1; procs = [ p1 ]; _ } :: rest ->
        let acc =
          ref
            ((env.deltas.(0) /. env.bw_in.(p1))
            +. ((env.wp.(l1) -. env.wp.(0)) /. env.spd.(p1)))
        in
        let pl = ref l1 and pu = ref p1 in
        List.iter
          (fun { Mapping.last; procs; _ } ->
            let p = List.hd procs in
            acc :=
              (!acc +. (env.deltas.(!pl) /. env.bw_pp.((!pu * env.m) + p)))
              +. ((env.wp.(last) -. env.wp.(!pl)) /. env.spd.(p));
            pl := last;
            pu := p)
          rest;
        !acc +. (env.deltas.(env.n) /. env.bw_out.(!pu))
    | _ ->
        (* [structure] already rejected replicated intervals. *)
        assert false
  in
  if not (bits_eq total claimed) then
    reject "claim latency does not re-price to the claimed value";
  List.length cells

(* ------------------------------------------------------------------ *)
(* Entry point                                                         *)
(* ------------------------------------------------------------------ *)

let check instance (cert : Cert.t) =
  let obs = Obs.ambient () in
  Obs.incr obs "cert.check.runs";
  let result =
    try
      let { Instance.pipeline; platform } = instance in
      let n = Pipeline.length pipeline and m = Platform.size platform in
      if n < 1 || m < 1 then reject "degenerate instance";
      if cert.Cert.n <> n || cert.Cert.m <> m then
        reject "certificate is about an (n=%d, m=%d) instance, got (%d, %d)"
          cert.Cert.n cert.Cert.m n m;
      (match cert.Cert.instance_digest with
      | None -> ()
      | Some d ->
          let actual = Digest.to_hex (Digest.string (Textio.to_string instance)) in
          if not (String.equal d actual) then
            reject "instance digest mismatch: certificate is about %s" d);
      let env = make_env instance in
      let entries =
        match cert.Cert.body with
        | Cert.Bb { objective; claim; nodes } ->
            check_bb env ~objective ~claim ~nodes
        | Cert.Dp { latency; mapping; cells } ->
            check_dp env ~latency ~mapping ~cells
      in
      Ok entries
    with Reject msg -> Error msg
  in
  (match result with
  | Ok entries ->
      Obs.incr obs "cert.check.accepted";
      Obs.add obs "cert.check.entries" entries
  | Error _ -> Obs.incr obs "cert.check.rejected");
  result
