(** Independent certificate replay.

    [check instance cert] accepts iff [cert] proves its claim about
    [instance].  The checker shares {e no} code with the solvers — this
    library does not link [lib/core] (see [lib/cert/dune]); it re-derives
    every price from the model layer ({!Relpipe_model}) alone, evaluating
    the paper's cost equations in the one canonical operand order the
    whole repo uses (processors ascending, communication targets
    descending, left-associated sums), so every comparison against a
    recorded number is bit-exact.

    What acceptance means:

    - [Bb] certificates: the transcript is a complete depth-first cover
      of the (interval, replication set) decision tree — the checker
      re-enumerates every child of every [expanded] node and requires
      exactly one transcript entry per reachable node, none left over.
      Every recorded latency bound, partial failure, and leaf evaluation
      is recomputed and must match bit-for-bit.  [pruned threshold]
      entries must genuinely violate the objective's threshold under the
      model's eps-tolerant [leq]; [pruned dominated] entries must carry
      an objective lower bound at or above the claimed optimum (sound
      because the solver's incumbent decreases eps-strictly, so any
      incumbent that justified a cut is >= the final claim).  A feasible
      claim must re-price bit-for-bit to its recorded values, be
      feasible, appear in the transcript as an evaluated leaf, and no
      evaluated feasible leaf may be eps-strictly better; an infeasible
      claim forbids feasible leaves and [dominated] cuts outright.
      Together these certify: the claim is achievable and no feasible
      interval mapping beats it beyond the model's eps tolerance.

    - [Dp] certificates: the cell table is read as a potential function.
      Every singleton cell must be present and at most the first-interval
      base cost; every relaxation edge [(e,u,mask) -> (e',v,mask+v)] must
      satisfy the triangle inequality against the recomputed edge cost
      (a missing target cell is an infinite potential and fails, which is
      how dropped admissions are caught); every complete cell closed
      against the output link must cost at least the claim; and the claim
      mapping must re-price bit-for-bit to the claimed latency.  By
      induction along any interval chain this certifies the claim is a
      true lower {e and} upper bound: the exact optimum.

    Records [cert.check.runs], [cert.check.accepted],
    [cert.check.rejected], and [cert.check.entries] on the ambient
    {!Relpipe_obs.Obs} collector. *)

open Relpipe_model

val dp_max_procs : int
(** Memory guard on [m] for [Dp] certificates (the potential table is
    [O(n m 2^m)]), mirroring the solver's own cap: 14. *)

val check : Instance.t -> Cert.t -> (int, string) result
(** [Ok entries] with the number of verified content entries, or
    [Error reason] naming the first defect found. *)
