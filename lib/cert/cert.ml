open Relpipe_model

let magic = "relpipe-cert v1"

type reason = Threshold | Dominated

type status =
  | Expanded
  | Evaluated of { latency : float; failure : float }
  | Pruned of { reason : reason; latency_lb : float; partial_failure : float }

type node = { path : Mapping.interval list; status : status }
type cell = { e : int; u : int; mask : int; value : float }

type bb_claim =
  | Infeasible
  | Feasible of {
      latency : float;
      failure : float;
      mapping : Mapping.interval list;
    }

type body =
  | Bb of {
      objective : Instance.objective;
      claim : bb_claim;
      nodes : node list;
    }
  | Dp of {
      latency : float;
      mapping : Mapping.interval list;
      cells : cell list;
    }

type t = { n : int; m : int; instance_digest : string option; body : body }

let entries t =
  match t.body with
  | Bb { nodes; _ } -> List.length nodes
  | Dp { cells; _ } -> List.length cells

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

(* Hexadecimal float literals round-trip bit-for-bit through
   [float_of_string], which is the whole point of a certificate: every
   number the checker reads is exactly the number the solver computed. *)
let fstr = Printf.sprintf "%h"

let interval_str { Mapping.first; last; procs } =
  Printf.sprintf "%d-%d:%s" first last
    (String.concat "," (List.map string_of_int procs))

let path_str = function
  | [] -> "-"
  | ivs -> String.concat "|" (List.map interval_str ivs)

let status_str = function
  | Expanded -> "expanded"
  | Evaluated { latency; failure } ->
      Printf.sprintf "evaluated %s %s" (fstr latency) (fstr failure)
  | Pruned { reason; latency_lb; partial_failure } ->
      Printf.sprintf "pruned %s %s %s"
        (match reason with Threshold -> "threshold" | Dominated -> "dominated")
        (fstr latency_lb) (fstr partial_failure)

let to_string t =
  let buf = Buffer.create 4096 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  line "%s" magic;
  line "kind %s" (match t.body with Bb _ -> "bb" | Dp _ -> "interval-dp");
  line "n %d" t.n;
  line "m %d" t.m;
  (match t.instance_digest with
  | None -> ()
  | Some d -> line "instance md5 %s" d);
  (match t.body with
  | Bb { objective; claim; nodes } ->
      (match objective with
      | Instance.Min_latency { max_failure } ->
          line "objective min-latency %s" (fstr max_failure)
      | Instance.Min_failure { max_latency } ->
          line "objective min-failure %s" (fstr max_latency));
      (match claim with
      | Infeasible -> line "claim infeasible"
      | Feasible { latency; failure; mapping } ->
          line "claim feasible %s %s" (fstr latency) (fstr failure);
          line "mapping %s" (path_str mapping));
      List.iter
        (fun { path; status } ->
          line "node %s %s" (path_str path) (status_str status))
        nodes
  | Dp { latency; mapping; cells } ->
      line "claim feasible %s" (fstr latency);
      line "mapping %s" (path_str mapping);
      List.iter
        (fun { e; u; mask; value } -> line "cell %d %d %d %s" e u mask (fstr value))
        cells);
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

let ( let* ) = Result.bind
let fail fmt = Printf.ksprintf (fun s -> Error s) fmt

let int_of tok = match int_of_string_opt tok with
  | Some v -> Ok v
  | None -> fail "not an integer: %S" tok

let float_of tok = match float_of_string_opt tok with
  | Some v -> Ok v
  | None -> fail "not a float: %S" tok

let parse_interval s =
  match String.index_opt s ':' with
  | None -> fail "interval missing ':': %S" s
  | Some i -> (
      let range = String.sub s 0 i in
      let procs = String.sub s (i + 1) (String.length s - i - 1) in
      match String.index_opt range '-' with
      | None -> fail "interval missing '-': %S" s
      | Some j ->
          let* first = int_of (String.sub range 0 j) in
          let* last =
            int_of (String.sub range (j + 1) (String.length range - j - 1))
          in
          let* procs =
            List.fold_left
              (fun acc tok ->
                let* acc = acc in
                let* p = int_of tok in
                Ok (p :: acc))
              (Ok [])
              (String.split_on_char ',' procs)
          in
          if procs = [] then fail "interval with no processors: %S" s
          else
            Ok { Mapping.first; last; procs = List.sort Int.compare procs })

let parse_path = function
  | "-" -> Ok []
  | s ->
      let* rev =
        List.fold_left
          (fun acc part ->
            let* acc = acc in
            let* iv = parse_interval part in
            Ok (iv :: acc))
          (Ok [])
          (String.split_on_char '|' s)
      in
      Ok (List.rev rev)

let parse_status = function
  | [ "expanded" ] -> Ok Expanded
  | [ "evaluated"; l; f ] ->
      let* latency = float_of l in
      let* failure = float_of f in
      Ok (Evaluated { latency; failure })
  | [ "pruned"; reason; lb; pf ] ->
      let* reason =
        match reason with
        | "threshold" -> Ok Threshold
        | "dominated" -> Ok Dominated
        | r -> fail "unknown prune reason %S" r
      in
      let* latency_lb = float_of lb in
      let* partial_failure = float_of pf in
      Ok (Pruned { reason; latency_lb; partial_failure })
  | toks -> fail "malformed node status: %S" (String.concat " " toks)

(* Raw directives collected in a first pass: the format is order-free
   below the magic line, so nothing is interpreted until everything has
   been read. *)
type raw = {
  mutable kind : string option;
  mutable rn : int option;
  mutable rm : int option;
  mutable digest : string option;
  mutable objective : Instance.objective option;
  mutable claim : string list option;  (* tokens after "claim" *)
  mutable mapping : Mapping.interval list option;
  mutable nodes : node list;  (* reversed *)
  mutable cells : cell list;  (* reversed *)
}

let tokens line =
  String.split_on_char ' ' line |> List.filter (fun s -> s <> "")

let once what prev store =
  match prev with
  | Some _ -> fail "duplicate %s directive" what
  | None ->
      store ();
      Ok ()

let parse_line raw line =
  match tokens line with
  | [] -> Ok ()
  | "kind" :: rest -> (
      match rest with
      | [ ("bb" | "interval-dp") as k ] ->
          once "kind" raw.kind (fun () -> raw.kind <- Some k)
      | _ -> fail "malformed kind line: %S" line)
  | [ "n"; v ] ->
      let* n = int_of v in
      once "n" raw.rn (fun () -> raw.rn <- Some n)
  | [ "m"; v ] ->
      let* m = int_of v in
      once "m" raw.rm (fun () -> raw.rm <- Some m)
  | [ "instance"; "md5"; d ] ->
      once "instance" raw.digest (fun () -> raw.digest <- Some d)
  | [ "objective"; which; v ] ->
      let* v = float_of v in
      let* objective =
        match which with
        | "min-latency" -> Ok (Instance.Min_latency { max_failure = v })
        | "min-failure" -> Ok (Instance.Min_failure { max_latency = v })
        | w -> fail "unknown objective %S" w
      in
      once "objective" raw.objective (fun () -> raw.objective <- Some objective)
  | "claim" :: rest -> once "claim" raw.claim (fun () -> raw.claim <- Some rest)
  | [ "mapping"; p ] ->
      let* mapping = parse_path p in
      once "mapping" raw.mapping (fun () -> raw.mapping <- Some mapping)
  | "node" :: p :: rest ->
      let* path = parse_path p in
      let* status = parse_status rest in
      raw.nodes <- { path; status } :: raw.nodes;
      Ok ()
  | [ "cell"; e; u; mask; v ] ->
      let* e = int_of e in
      let* u = int_of u in
      let* mask = int_of mask in
      let* value = float_of v in
      raw.cells <- { e; u; mask; value } :: raw.cells;
      Ok ()
  | tok :: _ -> fail "unknown directive %S" tok

let require what = function
  | Some v -> Ok v
  | None -> fail "missing %s directive" what

let of_string text =
  let lines =
    String.split_on_char '\n' text
    |> List.map String.trim
    |> List.filter (fun l -> l <> "" && l.[0] <> '#')
  in
  match lines with
  | [] -> fail "empty certificate"
  | first :: rest ->
      if first <> magic then fail "bad magic line %S (want %S)" first magic
      else
        let raw =
          {
            kind = None;
            rn = None;
            rm = None;
            digest = None;
            objective = None;
            claim = None;
            mapping = None;
            nodes = [];
            cells = [];
          }
        in
        let* () =
          List.fold_left
            (fun acc line ->
              let* () = acc in
              parse_line raw line)
            (Ok ()) rest
        in
        let* kind = require "kind" raw.kind in
        let* n = require "n" raw.rn in
        let* m = require "m" raw.rm in
        let* claim = require "claim" raw.claim in
        let* body =
          match kind with
          | "bb" ->
              let* objective = require "objective" raw.objective in
              let* claim =
                match claim with
                | [ "infeasible" ] ->
                    if raw.mapping <> None then
                      fail "mapping directive with an infeasible claim"
                    else Ok Infeasible
                | [ "feasible"; l; f ] ->
                    let* latency = float_of l in
                    let* failure = float_of f in
                    let* mapping = require "mapping" raw.mapping in
                    Ok (Feasible { latency; failure; mapping })
                | toks -> fail "malformed bb claim: %S" (String.concat " " toks)
              in
              if raw.cells <> [] then fail "cell directive in a bb certificate"
              else Ok (Bb { objective; claim; nodes = List.rev raw.nodes })
          | "interval-dp" ->
              let* latency =
                match claim with
                | [ "feasible"; l ] -> float_of l
                | toks -> fail "malformed dp claim: %S" (String.concat " " toks)
              in
              let* mapping = require "mapping" raw.mapping in
              if raw.nodes <> [] then
                fail "node directive in an interval-dp certificate"
              else if raw.objective <> None then
                fail "objective directive in an interval-dp certificate"
              else Ok (Dp { latency; mapping; cells = List.rev raw.cells })
          | _ -> assert false
        in
        Ok { n; m; instance_digest = raw.digest; body }

(* ------------------------------------------------------------------ *)
(* Order-insensitive equality                                          *)
(* ------------------------------------------------------------------ *)

let equal a b =
  let sorted_lines t =
    to_string t |> String.split_on_char '\n' |> List.sort String.compare
  in
  a.n = b.n && List.equal String.equal (sorted_lines a) (sorted_lines b)

(* ------------------------------------------------------------------ *)
(* Mutations                                                           *)
(* ------------------------------------------------------------------ *)

(* One ulp away from zero: the smallest perturbation that is guaranteed
   to change the bit pattern, which is all the checker's bit-exact replay
   needs to notice. *)
let bump x =
  if x >= 0.0 then Int64.float_of_bits (Int64.add (Int64.bits_of_float x) 1L)
  else Int64.float_of_bits (Int64.sub (Int64.bits_of_float x) 1L)

let pick index len = ((index mod len) + len) mod len

let mutate_raise_bound ?(index = 0) t =
  match t.body with
  | Bb ({ nodes; _ } as bb) ->
      let numbered =
        List.filter (fun { status; _ } -> status <> Expanded) nodes
      in
      if numbered = [] then None
      else
        let victim = List.nth numbered (pick index (List.length numbered)) in
        let nodes =
          List.map
            (fun node ->
              if node != victim then node
              else
                let status =
                  match node.status with
                  | Expanded -> assert false
                  | Evaluated ev ->
                      Evaluated { ev with latency = bump ev.latency }
                  | Pruned p -> Pruned { p with latency_lb = bump p.latency_lb }
                in
                { node with status })
            nodes
        in
        Some { t with body = Bb { bb with nodes } }
  | Dp ({ cells; _ } as dp) ->
      if cells = [] then None
      else
        let victim = List.nth cells (pick index (List.length cells)) in
        let cells =
          List.map
            (fun c -> if c != victim then c else { c with value = bump c.value })
            cells
        in
        Some { t with body = Dp { dp with cells } }

let mutate_drop_line ?(index = 0) t =
  match t.body with
  | Bb ({ nodes; _ } as bb) ->
      if nodes = [] then None
      else
        let victim = List.nth nodes (pick index (List.length nodes)) in
        Some
          { t with body = Bb { bb with nodes = List.filter (( != ) victim) nodes } }
  | Dp ({ cells; _ } as dp) ->
      if cells = [] then None
      else
        let victim = List.nth cells (pick index (List.length cells)) in
        Some
          { t with body = Dp { dp with cells = List.filter (( != ) victim) cells } }
