(** Optimality certificates for the exact solvers.

    A certificate is a self-contained, re-checkable account of {e why} a
    reported mapping is optimal: for the branch-and-bound solver, the full
    search transcript (every expansion, evaluation, and pruned subtree with
    the exact bound that justified the cut); for the interval DP, the full
    table of finite cells, read as a potential function.  The companion
    {!Check} module replays a certificate against the instance alone — it
    shares no code with [lib/core] (its [dune] file does not even link it)
    — so a bug in the solver and a bug in the checker would have to agree
    to let a wrong claim through.

    The on-disk format is line-based text.  The first line is the magic
    [relpipe-cert v1]; every following line is an independent keyed
    directive ([kind], [n], [m], [instance], [objective], [claim],
    [mapping], [node], [cell]), so a certificate may be reordered
    arbitrarily below the magic line without changing its meaning
    (property-tested in test/test_cert.ml).  Blank lines and [#] comments
    are ignored.  Floats are printed as hexadecimal literals ([%h]) so
    every recorded number round-trips bit-for-bit. *)

open Relpipe_model

(** Why the branch-and-bound search cut a subtree. *)
type reason =
  | Threshold  (** a latency/failure threshold was already unreachable *)
  | Dominated
      (** the subtree's objective lower bound cannot beat the claimed
          optimum, which the incumbent upper-bounded at cut time *)

type status =
  | Expanded
  | Evaluated of { latency : float; failure : float }
  | Pruned of { reason : reason; latency_lb : float; partial_failure : float }

type node = { path : Mapping.interval list; status : status }
(** One search node: the (first, last, replication set) intervals chosen
    so far in stage order, and what the search did there.  The root is the
    empty path. *)

type cell = { e : int; u : int; mask : int; value : float }
(** One finite DP cell: cheapest cost of stages [1..e] on the processor
    set [mask] with the last interval on [u] (input sends included, final
    output excluded). *)

type bb_claim =
  | Infeasible
  | Feasible of { latency : float; failure : float; mapping : Mapping.interval list }

type body =
  | Bb of {
      objective : Instance.objective;
      claim : bb_claim;
      nodes : node list;
    }
  | Dp of {
      latency : float;
      mapping : Mapping.interval list;
      cells : cell list;
    }

type t = {
  n : int;  (** pipeline length the certificate is about *)
  m : int;  (** platform size the certificate is about *)
  instance_digest : string option;
      (** MD5 (hex) of the instance's canonical {!Textio} text, binding
          the certificate to one concrete instance; verified by {!Check}
          when present *)
  body : body;
}

val entries : t -> int
(** Number of content entries: transcript nodes for [Bb], cells for
    [Dp]. *)

val to_string : t -> string
(** Render in the line format described above.  [of_string (to_string t)]
    parses back to an {!equal} certificate. *)

val of_string : string -> (t, string) result
(** Parse, tolerating arbitrary line order below the magic line.
    Duplicate scalar directives, unknown directives, or malformed lines
    are errors (never silently dropped — a checker must see exactly what
    the producer wrote). *)

val equal : t -> t -> bool
(** Order-insensitive equality: certificates that differ only in the
    order of their [node]/[cell] entries are equal. *)

(** {1 Mutation helpers}

    Deterministic single-defect mutations used by test/test_cert.ml and
    the [cert-replay] fuzz oracle to prove the checker actually rejects:
    a sound checker must refuse every mutant these produce. *)

val mutate_raise_bound : ?index:int -> t -> t option
(** Raise one recorded number by one ulp — the [index]-th (mod the number
    of candidates) evaluated/pruned transcript entry for [Bb], the
    [index]-th cell value for [Dp].  [None] when there is nothing to
    mutate. *)

val mutate_drop_line : ?index:int -> t -> t option
(** Delete the [index]-th (mod count) [node]/[cell] entry — a dropped
    admission the replay must notice.  [None] when there is nothing to
    drop. *)
