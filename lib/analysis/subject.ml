open Relpipe_model
module Loc = Relpipe_util.Loc

type origin = From_text | From_value

type stage = { work : float; output : float; span : Loc.span option }

type proc = { speed : float; failure : float; span : Loc.span option }

type link = {
  a : Textio.raw_endpoint;
  b : Textio.raw_endpoint;
  bw : float;
  span : Loc.span option;
}

type t = {
  origin : origin;
  input : (float * Loc.span option) option;
  stages : stage array;
  procs : proc array;
  default_bw : (float * Loc.span option) option;
  links : link list;
  bandwidth : int -> int -> float option;
}

let num_procs t = Array.length t.procs

let num_stages t = Array.length t.stages

let endpoint_index ~m = function
  | Textio.Rin -> Some 0
  | Textio.Rout -> Some (m + 1)
  | Textio.Rproc u -> if u >= 0 && u < m then Some (u + 1) else None

let endpoint_name ~m i =
  if i = 0 then "in" else if i = m + 1 then "out" else Printf.sprintf "P%d" (i - 1)

let of_raw (raw : Textio.raw) =
  let procs =
    Array.of_list
      (List.map
         (fun p ->
           {
             speed = p.Textio.proc_speed;
             failure = p.Textio.proc_failure;
             span = Some p.Textio.proc_span;
           })
         raw.Textio.raw_procs)
  in
  let m = Array.length procs in
  let stages =
    Array.of_list
      (List.map
         (fun s ->
           {
             work = s.Textio.stage_work;
             output = s.Textio.stage_output;
             span = Some s.Textio.stage_span;
           })
         raw.Textio.raw_stages)
  in
  let links =
    List.map
      (fun l ->
        {
          a = l.Textio.link_a;
          b = l.Textio.link_b;
          bw = l.Textio.link_bw;
          span = Some l.Textio.link_span;
        })
      raw.Textio.raw_links
  in
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun l ->
      match endpoint_index ~m l.a, endpoint_index ~m l.b with
      | Some i, Some j when i <> j ->
          Hashtbl.replace tbl (i, j) l.bw;
          Hashtbl.replace tbl (j, i) l.bw
      | _ -> ())
    links;
  let default = Option.map fst raw.Textio.raw_default_bw in
  let bandwidth i j =
    if i = j then None
    else
      match Hashtbl.find_opt tbl (i, j) with
      | Some _ as v -> v
      | None -> default
  in
  {
    origin = From_text;
    input = Option.map (fun (v, s) -> (v, Some s)) raw.Textio.raw_input;
    stages;
    procs;
    default_bw = Option.map (fun (v, s) -> (v, Some s)) raw.Textio.raw_default_bw;
    links;
    bandwidth;
  }

let of_instance (instance : Instance.t) =
  let pipeline = instance.Instance.pipeline in
  let platform = instance.Instance.platform in
  let m = Platform.size platform in
  let stages =
    Array.of_list
      (List.map
         (fun s -> { work = s.Pipeline.work; output = s.Pipeline.output; span = None })
         (Pipeline.stages pipeline))
  in
  let procs =
    Array.init m (fun u ->
        {
          speed = Platform.speed platform u;
          failure = Platform.failure platform u;
          span = None;
        })
  in
  let endpoint_of_index i =
    if i = 0 then Platform.Pin
    else if i = m + 1 then Platform.Pout
    else Platform.Proc (i - 1)
  in
  let bandwidth i j =
    if i = j || i < 0 || j < 0 || i > m + 1 || j > m + 1 then None
    else
      Some (Platform.bandwidth platform (endpoint_of_index i) (endpoint_of_index j))
  in
  {
    origin = From_value;
    input = Some (Pipeline.delta pipeline 0, None);
    stages;
    procs;
    default_bw = None;
    links = [];
    bandwidth;
  }
