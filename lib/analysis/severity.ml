type t = Hint | Warning | Error

let rank = function Hint -> 0 | Warning -> 1 | Error -> 2

let compare a b = Int.compare (rank a) (rank b)

let max a b = if compare a b >= 0 then a else b

let to_string = function
  | Hint -> "hint"
  | Warning -> "warning"
  | Error -> "error"

let of_string = function
  | "hint" -> Some Hint
  | "warning" -> Some Warning
  | "error" -> Some Error
  | _ -> None

let pp ppf t = Format.pp_print_string ppf (to_string t)

let exit_code (worst : t option) =
  match worst with
  | Some Error -> 2
  | Some Warning -> 1
  | Some Hint | None -> 0
