(** The severity lattice for lint findings.

    [Error] marks inputs that violate the model's domain (a solver run
    would crash or produce meaningless numbers), [Warning] marks
    suspicious modeling choices and numeric hazards, [Hint] marks
    optimization opportunities and degenerate-but-legal structure. *)

type t = Hint | Warning | Error

val rank : t -> int
(** [Hint -> 0], [Warning -> 1], [Error -> 2]. *)

val compare : t -> t -> int

val max : t -> t -> t

val to_string : t -> string
(** Lowercase: ["hint" | "warning" | "error"]. *)

val of_string : string -> t option

val pp : Format.formatter -> t -> unit

val exit_code : t option -> int
(** CLI exit status for a worst finding: [Error -> 2], [Warning -> 1],
    [Hint] or no findings [-> 0]. *)
