open Relpipe_model
module F = Relpipe_util.Float_cmp

let rule ~id ~severity ~title ~rationale ~example =
  let r = { Rule.id; severity; pass = Rule.Instance_pass; title; rationale; example } in
  Rule.register r;
  r

let r_speed =
  rule ~id:"RP-I001" ~severity:Severity.Error
    ~title:"processor speed must be finite and positive"
    ~rationale:
      "Latency terms divide work by speed; a zero, negative or non-finite \
       speed makes every latency formula meaningless."
    ~example:"proc 0 0.1"

let r_failure_domain =
  rule ~id:"RP-I002" ~severity:Severity.Error
    ~title:"failure probability must lie in [0,1)"
    ~rationale:
      "The paper models fp as the probability a processor fails during \
       execution; fp = 1 (a dead machine) or a value outside [0,1] breaks \
       the product formula for interval failure."
    ~example:"proc 10 1.5"

let r_failure_zero =
  rule ~id:"RP-I003" ~severity:Severity.Warning
    ~title:"failure probability is exactly 0"
    ~rationale:
      "A perfectly reliable processor collapses the bi-criteria trade-off: \
       mapping everything there satisfies any failure threshold, so the \
       instance likely encodes a modeling mistake."
    ~example:"proc 10 0"

let r_cost_domain =
  rule ~id:"RP-I004" ~severity:Severity.Error
    ~title:"work and data volumes must be finite and non-negative"
    ~rationale:
      "Negative or non-finite stage work or data sizes produce negative \
       or NaN latency terms."
    ~example:"stage -3 1"

let r_noop_stage =
  rule ~id:"RP-I005" ~severity:Severity.Warning
    ~title:"stage has zero work and zero output"
    ~rationale:
      "A no-op stage only enlarges the mapping search space (it still \
       occupies an interval slot and a replica set) without affecting any \
       metric."
    ~example:"stage 0 0"

let r_bandwidth_domain =
  rule ~id:"RP-I006" ~severity:Severity.Error
    ~title:"link bandwidth must be finite and positive"
    ~rationale:
      "Communication terms divide data volume by bandwidth; zero gives \
       infinite latency, negative or NaN values poison every sum."
    ~example:"link 0 1 0"

let r_undefined_proc =
  rule ~id:"RP-I007" ~severity:Severity.Error
    ~title:"link references an undefined processor"
    ~rationale:
      "A link endpoint must be \"in\", \"out\" or the index of a declared \
       processor; anything else is silently unusable."
    ~example:"proc 1 0.1\nlink 0 7 5"

let r_missing_bandwidth =
  rule ~id:"RP-I008" ~severity:Severity.Error
    ~title:"endpoint pair has no bandwidth and no default"
    ~rationale:
      "The platform is a clique: every pair of endpoints needs a declared \
       bandwidth or a `link default` fallback."
    ~example:"link in 0 5   # no other links, no default"

let r_disconnected =
  rule ~id:"RP-I009" ~severity:Severity.Error
    ~title:"endpoint is disconnected from Pin by zero-bandwidth links"
    ~rationale:
      "A processor (or Pout) with no positive-bandwidth route to Pin can \
       never carry an interval: data cannot reach it or leave it."
    ~example:"link in 1 0\nlink 0 1 0\nlink 1 out 0"

let r_dominated =
  rule ~id:"RP-I010" ~severity:Severity.Hint
    ~title:"processor is dominated (slower and less reliable)"
    ~rationale:
      "On homogeneous links the paper's dominance order applies: a \
       processor that is no faster and no more reliable than another (and \
       strictly worse in one) never appears in some optimal mapping; \
       dropping it shrinks the search space."
    ~example:"proc 10 0.1\nproc 5 0.2"

let r_single_stage =
  rule ~id:"RP-I011" ~severity:Severity.Hint
    ~title:"single-stage pipeline"
    ~rationale:
      "With n = 1 every mapping is one interval: the problem degenerates \
       to choosing a replica set, and the interval-mapping machinery is \
       overkill."
    ~example:"stage 5 1   # the only stage"

let r_duplicate_link =
  rule ~id:"RP-I012" ~severity:Severity.Warning
    ~title:"link declared more than once"
    ~rationale:
      "Later declarations silently win (links are symmetric), which hides \
       typos where two different bandwidths were intended for distinct \
       pairs."
    ~example:"link 0 1 5\nlink 1 0 8"

let r_missing_directive =
  rule ~id:"RP-I013" ~severity:Severity.Error
    ~title:"required directive is missing"
    ~rationale:
      "An instance needs an `input` size, at least one `stage` and at \
       least one `proc` to be well-formed."
    ~example:"stage 1 1\nproc 1 0.1   # no input line"

let r_unreachable_declared =
  rule ~id:"RP-I014" ~severity:Severity.Warning
    ~title:"endpoint unreachable through the declared links"
    ~rationale:
      "When bandwidths are missing the full connectivity check (RP-I009) \
       is skipped, but an endpoint that the *declared* positive-bandwidth \
       links cannot reach from Pin will stay unusable however the holes \
       are filled by explicit declarations alone; it needs a new link or \
       a `link default`."
    ~example:"proc 1 0.1\nproc 1 0.1\nlink in 0 5\nlink 0 out 5   # proc 1 has no link at all"

let rules =
  [
    r_speed; r_failure_domain; r_failure_zero; r_cost_domain; r_noop_stage;
    r_bandwidth_domain; r_undefined_proc; r_missing_bandwidth; r_disconnected;
    r_dominated; r_single_stage; r_duplicate_link; r_missing_directive;
    r_unreachable_declared;
  ]

(* ------------------------------------------------------------------ *)

let finite_pos x = Float.is_finite x && x > 0.0

let finite_nonneg x = Float.is_finite x && x >= 0.0

let check_procs (s : Subject.t) out =
  Array.iteri
    (fun u (p : Subject.proc) ->
      if not (finite_pos p.speed) then
        out (Rule.diag r_speed ?span:p.span "processor %d: speed %g is not finite and positive" u p.speed);
      if not (Float.is_finite p.failure && p.failure >= 0.0 && p.failure < 1.0)
      then
        out
          (Rule.diag r_failure_domain ?span:p.span
             "processor %d: failure probability %g is outside [0,1)" u p.failure)
      else if Float.equal p.failure 0.0 then
        out
          (Rule.diag r_failure_zero ?span:p.span
             "processor %d never fails (fp = 0); the reliability constraint \
              is trivially satisfied by mapping everything on it" u))
    s.Subject.procs

let check_stages (s : Subject.t) out =
  (match s.Subject.input with
  | Some (v, span) when not (finite_nonneg v) ->
      out (Rule.diag r_cost_domain ?span "input size %g is not finite and non-negative" v)
  | _ -> ());
  Array.iteri
    (fun k (st : Subject.stage) ->
      let bad_work = not (finite_nonneg st.work) in
      let bad_output = not (finite_nonneg st.output) in
      if bad_work then
        out
          (Rule.diag r_cost_domain ?span:st.span
             "stage %d: work %g is not finite and non-negative" (k + 1) st.work);
      if bad_output then
        out
          (Rule.diag r_cost_domain ?span:st.span
             "stage %d: output size %g is not finite and non-negative" (k + 1)
             st.output);
      if (not bad_work) && (not bad_output) && Float.equal st.work 0.0
         && Float.equal st.output 0.0
      then
        out
          (Rule.diag r_noop_stage ?span:st.span
             "stage %d does nothing (zero work, zero output); it only \
              enlarges the mapping search space" (k + 1)))
    s.Subject.stages

let pp_raw_endpoint ~m ppf = function
  | Textio.Rin -> Format.pp_print_string ppf "in"
  | Textio.Rout -> Format.pp_print_string ppf "out"
  | Textio.Rproc u ->
      if u >= 0 && u < m then Format.fprintf ppf "P%d" u
      else Format.fprintf ppf "%d" u

let check_links (s : Subject.t) out =
  let m = Subject.num_procs s in
  match s.Subject.origin with
  | Subject.From_value ->
      (* Smart constructors enforce positivity, but stay total. *)
      for i = 0 to m + 1 do
        for j = i + 1 to m + 1 do
          match s.Subject.bandwidth i j with
          | Some b when not (finite_pos b) ->
              out
                (Rule.diag r_bandwidth_domain
                   "link %s-%s: bandwidth %g is not finite and positive"
                   (Subject.endpoint_name ~m i) (Subject.endpoint_name ~m j) b)
          | _ -> ()
        done
      done
  | Subject.From_text ->
      (match s.Subject.default_bw with
      | Some (b, span) when not (finite_pos b) ->
          out
            (Rule.diag r_bandwidth_domain ?span
               "default bandwidth %g is not finite and positive" b)
      | _ -> ());
      let seen = Hashtbl.create 16 in
      List.iter
        (fun (l : Subject.link) ->
          let pp = pp_raw_endpoint ~m in
          if not (finite_pos l.bw) then
            out
              (Rule.diag r_bandwidth_domain ?span:l.span
                 "link %a-%a: bandwidth %g is not finite and positive" pp l.a pp
                 l.b l.bw);
          let check_ref e =
            match e with
            | Textio.Rproc u when u < 0 || u >= m ->
                out
                  (Rule.diag r_undefined_proc ?span:l.span
                     "link references processor %d but only %d processor%s \
                      declared (0..%d)"
                     u m
                     (if m = 1 then " is" else "s are")
                     (m - 1))
            | _ -> ()
          in
          check_ref l.a;
          check_ref l.b;
          match Subject.endpoint_index ~m l.a, Subject.endpoint_index ~m l.b with
          | Some i, Some j ->
              let key = (Int.min i j, Int.max i j) in
              if Hashtbl.mem seen key then
                out
                  (Rule.diag r_duplicate_link ?span:l.span
                     "link %s-%s is declared more than once; the last \
                      declaration wins"
                     (Subject.endpoint_name ~m (fst key))
                     (Subject.endpoint_name ~m (snd key)))
              else Hashtbl.add seen key ();
          | _ -> ())
        s.Subject.links

(* Missing-bandwidth scan; returns true when at least one pair is
   undeclared so the connectivity check can be skipped (the bandwidth map
   is not total, reachability would just echo the holes). *)
let check_missing (s : Subject.t) out =
  match s.Subject.origin, s.Subject.default_bw with
  | Subject.From_value, _ | _, Some _ -> false
  | Subject.From_text, None ->
      let m = Subject.num_procs s in
      let missing = ref false in
      for i = 0 to m + 1 do
        for j = i + 1 to m + 1 do
          if s.Subject.bandwidth i j = None then begin
            missing := true;
            out
              (Rule.diag r_missing_bandwidth
                 "no bandwidth for link %s-%s and no `link default`"
                 (Subject.endpoint_name ~m i) (Subject.endpoint_name ~m j))
          end
        done
      done;
      !missing

(* BFS from Pin over positive-bandwidth links (undeclared pairs are not
   edges).  Index 0 is Pin, 1..m are processors, m+1 is Pout. *)
let reachable_from_pin (s : Subject.t) =
  let m = Subject.num_procs s in
  let size = m + 2 in
  let reachable = Array.make size false in
  let queue = Queue.create () in
  reachable.(0) <- true;
  Queue.push 0 queue;
  while not (Queue.is_empty queue) do
    let i = Queue.pop queue in
    for j = 0 to size - 1 do
      if (not reachable.(j)) && i <> j then
        match s.Subject.bandwidth i j with
        | Some b when b > 0.0 ->
            reachable.(j) <- true;
            Queue.push j queue
        | _ -> ()
    done
  done;
  reachable

let check_connectivity (s : Subject.t) out =
  let m = Subject.num_procs s in
  let reachable = reachable_from_pin s in
  Array.iteri
    (fun u (p : Subject.proc) ->
      if not reachable.(u + 1) then
        out
          (Rule.diag r_disconnected ?span:p.span
             "processor %d has no positive-bandwidth route to Pin; it can \
              never carry an interval" u))
    s.Subject.procs;
  if not reachable.(m + 1) then
    out
      (Rule.diag r_disconnected
         "Pout has no positive-bandwidth route to Pin; no mapping can \
          deliver results")

(* Weaker complement of RP-I009 for instances with bandwidth holes: only
   the declared links count, so a finding means no amount of re-declaring
   the listed pairs can help — a new link (or `link default`) is needed. *)
let check_unreachable_declared (s : Subject.t) out =
  let m = Subject.num_procs s in
  let reachable = reachable_from_pin s in
  Array.iteri
    (fun u (p : Subject.proc) ->
      if not reachable.(u + 1) then
        out
          (Rule.diag r_unreachable_declared ?span:p.span
             "processor %d is unreachable from Pin through the declared \
              positive-bandwidth links; add a link or a `link default`" u))
    s.Subject.procs;
  if not reachable.(m + 1) then
    out
      (Rule.diag r_unreachable_declared
         "Pout is unreachable from Pin through the declared \
          positive-bandwidth links; add a link or a `link default`")

let links_homogeneous (s : Subject.t) =
  let m = Subject.num_procs s in
  match s.Subject.bandwidth 0 (m + 1) with
  | None -> false
  | Some reference ->
      let ok = ref (finite_pos reference) in
      for i = 0 to m + 1 do
        for j = i + 1 to m + 1 do
          match s.Subject.bandwidth i j with
          | Some b when F.approx_eq reference b -> ()
          | _ -> ok := false
        done
      done;
      !ok

let check_dominance (s : Subject.t) out =
  if links_homogeneous s then begin
    let procs = s.Subject.procs in
    let m = Array.length procs in
    let valid (p : Subject.proc) =
      finite_pos p.speed && Float.is_finite p.failure && p.failure >= 0.0
      && p.failure < 1.0
    in
    for v = 0 to m - 1 do
      let pv = procs.(v) in
      if valid pv then begin
        (* Best strict dominator: fastest, then most reliable. *)
        let dominator = ref None in
        for u = 0 to m - 1 do
          let pu = procs.(u) in
          if
            u <> v && valid pu && pu.speed >= pv.speed
            && pu.failure <= pv.failure
            && (pu.speed > pv.speed || pu.failure < pv.failure)
          then
            match !dominator with
            | None -> dominator := Some u
            | Some w ->
                let pw = procs.(w) in
                if
                  pu.speed > pw.speed
                  || (pu.speed = pw.speed && pu.failure < pw.failure)
                then dominator := Some u
        done;
        match !dominator with
        | Some u ->
            out
              (Rule.diag r_dominated ?span:pv.span
                 "processor %d is dominated by processor %d (no faster, no \
                  more reliable, strictly worse in one); it can be dropped \
                  from the search" v u)
        | None -> ()
      end
    done
  end

let check_shape (s : Subject.t) out =
  (match s.Subject.origin with
  | Subject.From_text ->
      if s.Subject.input = None then
        out (Rule.diag r_missing_directive "missing `input` directive");
      if Array.length s.Subject.stages = 0 then
        out (Rule.diag r_missing_directive "no `stage` directives");
      if Array.length s.Subject.procs = 0 then
        out (Rule.diag r_missing_directive "no `proc` directives")
  | Subject.From_value -> ());
  if Array.length s.Subject.stages = 1 then
    out
      (Rule.diag r_single_stage
         ?span:(s.Subject.stages.(0)).Subject.span
         "single-stage pipeline: the problem reduces to choosing one \
          replica set")

let run (s : Subject.t) =
  let acc = ref [] in
  let out d = acc := d :: !acc in
  check_shape s out;
  check_procs s out;
  check_stages s out;
  check_links s out;
  let holes = check_missing s out in
  if holes then check_unreachable_declared s out
  else check_connectivity s out;
  check_dominance s out;
  List.rev !acc
