(** The rule registry.

    Every lint rule carries stable metadata (ID, default severity, the
    pass it belongs to, a one-line title, a rationale, and a minimal
    triggering example).  Passes register their rules at load time; the
    registry backs [relpipe lint --rules] and keeps IDs unique.

    The registry is pluggable: downstream code can {!register} additional
    rules and emit {!Diagnostic.t} values for them from its own passes. *)

type pass = Instance_pass | Mapping_pass | Numeric_pass

type t = {
  id : string;  (** stable, e.g. ["RP-I001"] *)
  severity : Severity.t;  (** default severity of findings *)
  pass : pass;
  title : string;  (** one line, imperative-free *)
  rationale : string;  (** why this matters for the paper's model *)
  example : string;  (** a minimal input fragment that triggers it *)
}

val pass_name : pass -> string
(** ["instance" | "mapping" | "numeric"]. *)

val register : t -> unit
(** @raise Invalid_argument on a duplicate ID. *)

val find : string -> t option

val all : unit -> t list
(** Every registered rule, sorted by ID. *)

val diag :
  t ->
  ?span:Relpipe_util.Loc.span ->
  ('a, Format.formatter, unit, Diagnostic.t) format4 ->
  'a
(** Build a finding for a rule at its default severity. *)
