type pass = Instance_pass | Mapping_pass | Numeric_pass

type t = {
  id : string;
  severity : Severity.t;
  pass : pass;
  title : string;
  rationale : string;
  example : string;
}

let pass_name = function
  | Instance_pass -> "instance"
  | Mapping_pass -> "mapping"
  | Numeric_pass -> "numeric"

let registry : (string, t) Hashtbl.t = Hashtbl.create 32

let register rule =
  if Hashtbl.mem registry rule.id then
    invalid_arg (Printf.sprintf "Rule.register: duplicate rule ID %s" rule.id);
  Hashtbl.add registry rule.id rule

let find id = Hashtbl.find_opt registry id

let all () =
  (* devlint: allow RP-S204 — the fold's order is erased by the sort *)
  Hashtbl.fold (fun _ r acc -> r :: acc) registry []
  |> List.sort (fun a b -> String.compare a.id b.id)

let diag rule ?span fmt =
  Diagnostic.make ~rule:rule.id ~severity:rule.severity ?span fmt
