(** The numeric pass: floating-point hazard detection (rules [RP-N001]
    .. [RP-N003]).

    These rules never fire on domain errors (the instance pass owns
    those); they flag inputs whose *valid* values stress double
    precision: reliability products that underflow in linear space, and
    latency sums whose term magnitudes differ enough that naive
    accumulation silently drops contributions. *)

val rules : Rule.t list

val run : Subject.t -> Diagnostic.t list
