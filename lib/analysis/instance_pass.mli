(** The instance pass: structural and domain checks over a platform and
    pipeline description (rules [RP-I001] .. [RP-I013]).

    Works on both raw parsed text (with spans) and constructed instances
    (spanless) via {!Subject.t}.  Smart constructors already reject some
    of these defects at build time; running the pass first turns the
    would-be [Invalid_argument] into a complete, located report. *)

val rules : Rule.t list
(** The rules this pass registers, in ID order. *)

val run : Subject.t -> Diagnostic.t list
(** Findings in no particular order; {!Diagnostic.sort} to present. *)
