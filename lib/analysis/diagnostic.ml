module Loc = Relpipe_util.Loc

type t = {
  rule : string;
  severity : Severity.t;
  message : string;
  span : Loc.span option;
}

let make ~rule ~severity ?span fmt =
  Format.kasprintf (fun message -> { rule; severity; message; span }) fmt

let compare_span_opt a b =
  match a, b with
  | None, None -> 0
  | None, Some _ -> -1
  | Some _, None -> 1
  | Some a, Some b -> Loc.compare_span a b

let compare a b =
  let c = Int.compare (Severity.rank b.severity) (Severity.rank a.severity) in
  if c <> 0 then c
  else
    let c = compare_span_opt a.span b.span in
    if c <> 0 then c else String.compare a.rule b.rule

let sort ds = List.stable_sort (fun a b -> compare a b) ds

let max_severity = function
  | [] -> None
  | d :: tl ->
      Some (List.fold_left (fun acc d -> Severity.max acc d.severity) d.severity tl)

let exit_code ds = Severity.exit_code (max_severity ds)

let errors ds = List.filter (fun d -> d.severity = Severity.Error) ds

let pp ?file ppf d =
  (match file with Some f -> Format.fprintf ppf "%s:" f | None -> ());
  (match d.span with
  | Some span -> Format.fprintf ppf "%a: " Loc.pp_span span
  | None -> if file <> None then Format.pp_print_string ppf " ");
  Format.fprintf ppf "%a[%s]: %s" Severity.pp d.severity d.rule d.message

let to_string ?file d = Format.asprintf "%a" (pp ?file) d

(* ------------------------------------------------------------------ *)
(* JSON                                                                *)
(* ------------------------------------------------------------------ *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let span_to_json = function
  | None -> "null"
  | Some { Loc.start; stop } ->
      Printf.sprintf
        "{\"line\":%d,\"col\":%d,\"end_line\":%d,\"end_col\":%d}" start.Loc.line
        start.Loc.col stop.Loc.line stop.Loc.col

let to_json d =
  Printf.sprintf "{\"rule\":\"%s\",\"severity\":\"%s\",\"message\":\"%s\",\"span\":%s}"
    (json_escape d.rule)
    (Severity.to_string d.severity)
    (json_escape d.message) (span_to_json d.span)

let report_to_json ?file ds =
  let ds = sort ds in
  let count sev =
    List.length (List.filter (fun d -> d.severity = sev) ds)
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf "{\"version\":1,";
  (match file with
  | Some f -> Buffer.add_string buf (Printf.sprintf "\"file\":\"%s\"," (json_escape f))
  | None -> ());
  Buffer.add_string buf "\"findings\":[";
  List.iteri
    (fun i d ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (to_json d))
    ds;
  Buffer.add_string buf
    (Printf.sprintf "],\"summary\":{\"error\":%d,\"warning\":%d,\"hint\":%d}}"
       (count Severity.Error) (count Severity.Warning) (count Severity.Hint));
  Buffer.contents buf
