(** High-level entry points of the diagnostics engine.

    [relpipe lint], the solver guards and {!Relpipe_core.Validate} all go
    through this module; the individual passes stay available for callers
    that already hold a {!Subject.t}.

    Findings are returned sorted worst-first ({!Diagnostic.sort}). *)

open Relpipe_model

val rules : unit -> Rule.t list
(** The full registered rule catalog, in ID order (forces every pass
    module to load). *)

val lint_instance_text : string -> Diagnostic.t list
(** Run the instance and numeric passes over instance-file text.  A
    syntax error is reported as the single finding [RP-P001] with the
    parser's span. *)

val parse_instance_text : string -> (Instance.t, Diagnostic.t list) result
(** Parse and build an instance; both syntax and construction failures
    come back as the [RP-P001] finding carrying the parser's span, so
    callers (the CLI, the batch engine) report positions exactly like
    [relpipe lint]. *)

val load_instance_file : string -> (Instance.t, string) result
(** Read and {!parse_instance_text} a file.  Failures are rendered
    ["path:LINE:COL-COL: error[RP-P001]: message"] (IO errors keep the
    system message). *)

val lint_instance : Instance.t -> Diagnostic.t list
(** Instance and numeric passes over a constructed instance (findings
    carry no spans). *)

val instance_errors : Instance.t -> Diagnostic.t list
(** Only the [Error]-level findings — the solver-entry guard. *)

val lint_mapping_text : n:int -> m:int -> string -> Diagnostic.t list
(** Mapping pass over mapping text; syntax errors become [RP-P002]. *)

val lint_mapping : n:int -> m:int -> Mapping.t -> Diagnostic.t list
(** Mapping pass over a constructed mapping (e.g. a solver output). *)

val lint_solution : Instance.t -> Mapping.t -> Diagnostic.t list
(** Everything that applies to a solved mapping in context: the mapping
    pass plus the numeric pass of its instance. *)
