open Relpipe_model

type interval = {
  first : int;
  last : int;
  procs : (int * Relpipe_util.Loc.span option) list;
  span : Relpipe_util.Loc.span option;
}

let of_raw raw =
  List.map
    (fun iv ->
      {
        first = iv.Mapping_syntax.r_first;
        last = iv.Mapping_syntax.r_last;
        procs =
          List.map (fun (u, span) -> (u, Some span)) iv.Mapping_syntax.r_procs;
        span = Some iv.Mapping_syntax.r_span;
      })
    raw

let of_mapping mapping =
  List.map
    (fun iv ->
      {
        first = iv.Mapping.first;
        last = iv.Mapping.last;
        procs = List.map (fun u -> (u, None)) iv.Mapping.procs;
        span = None;
      })
    (Mapping.intervals mapping)

let rule ~id ~severity ~title ~rationale ~example =
  let r = { Rule.id; severity; pass = Rule.Mapping_pass; title; rationale; example } in
  Rule.register r;
  r

let r_range =
  rule ~id:"RP-M001" ~severity:Severity.Error
    ~title:"interval stage range is invalid"
    ~rationale:
      "An interval must cover a non-empty range of existing stages: \
       1 <= first <= last <= n."
    ~example:"3-2:0   # inverted range"

let r_contiguity =
  rule ~id:"RP-M002" ~severity:Severity.Error
    ~title:"intervals are not contiguous over the pipeline"
    ~rationale:
      "The paper's interval mappings partition stages 1..n into \
       consecutive blocks; a gap or overlap leaves stages unmapped or \
       mapped twice."
    ~example:"1:0; 3:1   # stage 2 unmapped"

let r_proc_range =
  rule ~id:"RP-M003" ~severity:Severity.Error
    ~title:"interval uses a processor outside the platform"
    ~rationale:"Processor indices must lie in 0..m-1."
    ~example:"1-2:7   # platform has 3 processors"

let r_proc_reuse =
  rule ~id:"RP-M004" ~severity:Severity.Error
    ~title:"processor assigned more than once"
    ~rationale:
      "Replica sets are disjoint: a processor carries at most one \
       interval (it is fully pipelined on that interval's computations)."
    ~example:"1:0; 2:0"

let r_replication =
  rule ~id:"RP-M005" ~severity:Severity.Error
    ~title:"replication exceeds the platform size"
    ~rationale:
      "An interval cannot enroll more replicas than there are \
       processors."
    ~example:"1-2:0,1,0   # 3 slots on a 2-processor platform"

let r_one_port =
  rule ~id:"RP-M006" ~severity:Severity.Warning
    ~title:"adjacent replicated intervals serialize under the one-port model"
    ~rationale:
      "Consecutive intervals replicated r and r' ways exchange r * r' \
       messages; the one-port model sends them sequentially, so latency \
       grows with the product while reliability gains stay per-interval."
    ~example:"1:0,1; 2:2,3"

let rules =
  [ r_range; r_contiguity; r_proc_range; r_proc_reuse; r_replication; r_one_port ]

let pp_range ppf (iv : interval) =
  if iv.first = iv.last then Format.fprintf ppf "[%d]" iv.first
  else Format.fprintf ppf "[%d-%d]" iv.first iv.last

let run ~n ~m intervals =
  let acc = ref [] in
  let out d = acc := d :: !acc in
  let ranges_ok = ref true in
  List.iter
    (fun iv ->
      if iv.first < 1 || iv.last > n || iv.first > iv.last then begin
        ranges_ok := false;
        out
          (Rule.diag r_range ?span:iv.span
             "interval %a is not a valid stage range for a %d-stage pipeline"
             pp_range iv n)
      end)
    intervals;
  (* Contiguity is only meaningful once every range is well-formed. *)
  if !ranges_ok then begin
    let expected = ref 1 in
    List.iter
      (fun iv ->
        if iv.first <> !expected then
          out
            (Rule.diag r_contiguity ?span:iv.span
               "interval %a starts at stage %d but stage %d is expected \
                (gap or overlap)"
               pp_range iv iv.first !expected);
        expected := Int.max !expected (iv.last + 1))
      intervals;
    if !expected <> n + 1 && !expected <= n then begin
      let last_span =
        match List.rev intervals with [] -> None | iv :: _ -> iv.span
      in
      out
        (Rule.diag r_contiguity ?span:last_span
           "stages %d..%d are not mapped by any interval" !expected n)
    end
  end;
  let seen = Hashtbl.create 16 in
  List.iter
    (fun iv ->
      List.iter
        (fun (u, span) ->
          if u < 0 || u >= m then
            out
              (Rule.diag r_proc_range ?span
                 "interval %a uses processor %d but the platform has %d \
                  (indices 0..%d)"
                 pp_range iv u m (m - 1))
          else
            match Hashtbl.find_opt seen u with
            | Some first_iv ->
                out
                  (Rule.diag r_proc_reuse ?span
                     "processor %d is already assigned to interval %a" u
                     pp_range first_iv)
            | None -> Hashtbl.add seen u iv)
        iv.procs;
      let r = List.length iv.procs in
      if r > m then
        out
          (Rule.diag r_replication ?span:iv.span
             "interval %a replicates %d ways but the platform only has %d \
              processor%s"
             pp_range iv r m
             (if m = 1 then "" else "s")))
    intervals;
  let rec adjacent = function
    | a :: (b :: _ as tl) ->
        let ra = List.length a.procs and rb = List.length b.procs in
        if ra > 1 && rb > 1 then
          out
            (Rule.diag r_one_port ?span:b.span
               "intervals %a and %a are both replicated: the one-port model \
                serializes their %d x %d = %d inter-interval transfers"
               pp_range a pp_range b ra rb (ra * rb));
        adjacent tl
    | _ -> ()
  in
  adjacent intervals;
  List.rev !acc
