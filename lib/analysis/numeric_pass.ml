let rule ~id ~severity ~title ~rationale ~example =
  let r = { Rule.id; severity; pass = Rule.Numeric_pass; title; rationale; example } in
  Rule.register r;
  r

let r_underflow =
  rule ~id:"RP-N001" ~severity:Severity.Warning
    ~title:"reliability product underflows in linear space"
    ~rationale:
      "Interval failure is a product of failure probabilities; when the \
       worst-case product over all processors drops below the smallest \
       normal double (~2.2e-308), linear-space evaluation reports exactly \
       0 and reliability comparisons become meaningless.  Compute in log \
       space (Failure.log_survival does)."
    ~example:"proc 1 1e-120   # x3: product 1e-360 underflows"

let r_absorption =
  rule ~id:"RP-N002" ~severity:Severity.Warning
    ~title:"latency terms differ by more than 2^53"
    ~rationale:
      "Latency is a sum of work and communication terms; once the \
       largest term exceeds the smallest by the double-precision \
       significand (2^53 ~ 9e15), naive left-to-right summation absorbs \
       the small terms entirely.  Use compensated summation (Util.Kahan, \
       as Pipeline's prefix sums do)."
    ~example:"stage 1e20 1\nstage 1 1"

let r_failure_near_one =
  rule ~id:"RP-N003" ~severity:Severity.Hint
    ~title:"failure probability within 1e-12 of 1"
    ~rationale:
      "Interval survival multiplies (1 - fp) factors; when fp is this \
       close to 1 the complement loses most of its significant digits, \
       so reliability differences between mappings may be noise."
    ~example:"proc 10 0.9999999999999"

let r_subnormal_survival =
  rule ~id:"RP-N004" ~severity:Severity.Warning
    ~title:"failure probability so small its log-space term is subnormal"
    ~rationale:
      "Log-space reliability sums log1p(-fp) terms; when fp is below the \
       smallest normal double (~2.2e-308) that term is subnormal, where \
       doubles carry fewer significant bits, so the processor's \
       contribution to any survival sum is mostly rounding noise.  Such \
       an fp is indistinguishable from 0: declare it 0 (and accept that \
       the processor cannot help the reliability constraint) or use a \
       physically plausible magnitude."
    ~example:"proc 1 1e-310"

let rules = [ r_underflow; r_absorption; r_failure_near_one; r_subnormal_survival ]

(* ------------------------------------------------------------------ *)

let valid_failure fp = Float.is_finite fp && fp >= 0.0 && fp < 1.0

let check_underflow (s : Subject.t) out =
  (* Worst case for linear-space evaluation: every processor replicated
     on one interval, failure = prod fp_u over the fp > 0 processors. *)
  let log_product = ref 0.0 in
  let contributors = ref 0 in
  Array.iter
    (fun (p : Subject.proc) ->
      if valid_failure p.failure && p.failure > 0.0 then begin
        log_product := !log_product +. Float.log p.failure;
        incr contributors
      end)
    s.Subject.procs;
  if !contributors > 0 && !log_product < Float.log Float.min_float then
    out
      (Rule.diag r_underflow
         "replicating all %d processors on one interval gives a failure \
          product near exp(%.0f), below the smallest normal double: \
          evaluate reliability in log space" !contributors !log_product)

let extremes values =
  (* (max, min positive, index of min positive) over finite positives. *)
  let mx = ref Float.neg_infinity and mn = ref Float.infinity and mn_i = ref (-1) in
  Array.iteri
    (fun i v ->
      if Float.is_finite v && v > 0.0 then begin
        if v > !mx then mx := v;
        if v < !mn then begin
          mn := v;
          mn_i := i
        end
      end)
    values;
  if !mn_i < 0 then None else Some (!mx, !mn, !mn_i)

let two_pow_53 = 9007199254740992.0

let check_absorption (s : Subject.t) out =
  let stages = s.Subject.stages in
  (match extremes (Array.map (fun (st : Subject.stage) -> st.Subject.work) stages) with
  | Some (mx, mn, i) when mx /. mn > two_pow_53 ->
      out
        (Rule.diag r_absorption
           ?span:(stages.(i)).Subject.span
           "stage works span a %.1e ratio: naive summation absorbs stage \
            %d's work (%g) entirely; use compensated summation (Util.Kahan)"
           (mx /. mn) (i + 1) mn)
  | _ -> ());
  let volumes =
    Array.append
      (match s.Subject.input with Some (v, _) -> [| v |] | None -> [||])
      (Array.map (fun (st : Subject.stage) -> st.Subject.output) stages)
  in
  match extremes volumes with
  | Some (mx, mn, _) when mx /. mn > two_pow_53 ->
      out
        (Rule.diag r_absorption
           "data volumes span a %.1e ratio: naive summation of \
            communication terms absorbs the smallest transfers; use \
            compensated summation (Util.Kahan)"
           (mx /. mn))
  | _ -> ()

let check_near_one (s : Subject.t) out =
  Array.iteri
    (fun u (p : Subject.proc) ->
      if valid_failure p.failure && 1.0 -. p.failure < 1e-12 then
        out
          (Rule.diag r_failure_near_one ?span:p.span
             "processor %d: failure probability %.17g is within 1e-12 of 1; \
              its survival factor has almost no significant digits" u
             p.failure))
    s.Subject.procs

let check_subnormal_survival (s : Subject.t) out =
  Array.iteri
    (fun u (p : Subject.proc) ->
      if valid_failure p.failure && p.failure > 0.0 then
        let term = Float.log1p (-.p.failure) in
        if Float.abs term < Float.min_float then
          out
            (Rule.diag r_subnormal_survival ?span:p.span
               "processor %d: failure probability %g makes the log-space \
                survival term log1p(-fp) = %g subnormal; treat it as 0 or \
                use a plausible magnitude" u p.failure term))
    s.Subject.procs

let run (s : Subject.t) =
  let acc = ref [] in
  let out d = acc := d :: !acc in
  check_underflow s out;
  check_absorption s out;
  check_near_one s out;
  check_subnormal_survival s out;
  List.rev !acc
