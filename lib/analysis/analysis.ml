open Relpipe_model

let r_instance_syntax =
  let r =
    {
      Rule.id = "RP-P001";
      severity = Severity.Error;
      pass = Rule.Instance_pass;
      title = "instance file does not parse";
      rationale =
        "Nothing can be analysed until the text matches the instance \
         grammar (see Textio).";
      example = "frobnicate 1";
    }
  in
  Rule.register r;
  r

let r_mapping_syntax =
  let r =
    {
      Rule.id = "RP-P002";
      severity = Severity.Error;
      pass = Rule.Mapping_pass;
      title = "mapping text does not parse";
      rationale =
        "Nothing can be analysed until the text matches the \
         range:procs[;...] mapping grammar (see Mapping_syntax).";
      example = "1-2-3:0";
    }
  in
  Rule.register r;
  r

(* Referencing the pass rule lists here guarantees their registration
   side effects have run whenever this module is linked. *)
let rules () =
  ignore Instance_pass.rules;
  ignore Mapping_pass.rules;
  ignore Numeric_pass.rules;
  Rule.all ()

let run_instance_subject subject =
  Diagnostic.sort (Instance_pass.run subject @ Numeric_pass.run subject)

let lint_instance_text text =
  match Textio.parse_raw text with
  | Error { Textio.message; span } ->
      [ Rule.diag r_instance_syntax ?span "%s" message ]
  | Ok raw -> run_instance_subject (Subject.of_raw raw)

let lint_instance instance = run_instance_subject (Subject.of_instance instance)

let parse_instance_text text =
  match Textio.parse_raw text with
  | Error { Textio.message; span } ->
      Error [ Rule.diag r_instance_syntax ?span "%s" message ]
  | Ok raw -> (
      match Textio.build raw with
      | Error { Textio.message; span } ->
          Error [ Rule.diag r_instance_syntax ?span "%s" message ]
      | Ok instance -> Ok instance)

let load_instance_file path =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error msg -> Error msg
  | text -> (
      match parse_instance_text text with
      | Ok instance -> Ok instance
      | Error ds ->
          Error
            (String.concat "\n"
               (List.map (fun d -> Diagnostic.to_string ~file:path d) ds)))

let instance_errors instance = Diagnostic.errors (lint_instance instance)

let lint_mapping_text ~n ~m text =
  match Mapping_syntax.parse_raw text with
  | Error { Mapping_syntax.message; span } ->
      [ Rule.diag r_mapping_syntax ?span "%s" message ]
  | Ok raw -> Diagnostic.sort (Mapping_pass.run ~n ~m (Mapping_pass.of_raw raw))

let lint_mapping ~n ~m mapping =
  Diagnostic.sort (Mapping_pass.run ~n ~m (Mapping_pass.of_mapping mapping))

let lint_solution instance mapping =
  let n = Pipeline.length instance.Instance.pipeline in
  let m = Platform.size instance.Instance.platform in
  Diagnostic.sort
    (Mapping_pass.run ~n ~m (Mapping_pass.of_mapping mapping)
    @ Numeric_pass.run (Subject.of_instance instance))
