(** The mapping pass: structural checks of an interval mapping against a
    pipeline of [n] stages and a platform of [m] processors (rules
    [RP-M001] .. [RP-M006]).

    Works on the raw, span-carrying form produced by
    {!Relpipe_model.Mapping_syntax.parse_raw} — which can represent every
    defect {!Relpipe_model.Mapping.validate} rejects — and on constructed
    mappings (solver outputs), where only the model-assumption rules can
    still fire. *)

type interval = {
  first : int;
  last : int;
  procs : (int * Relpipe_util.Loc.span option) list;
  span : Relpipe_util.Loc.span option;
}

val of_raw : Relpipe_model.Mapping_syntax.raw_interval list -> interval list

val of_mapping : Relpipe_model.Mapping.t -> interval list

val rules : Rule.t list

val run : n:int -> m:int -> interval list -> Diagnostic.t list
