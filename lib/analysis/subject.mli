(** The normalized view the instance-level passes analyse.

    Two inputs feed the same rules: the raw, span-carrying form produced
    by {!Relpipe_model.Textio.parse_raw} (which can hold values that the
    smart constructors would reject), and an already-constructed
    {!Relpipe_model.Instance.t} (whose findings carry no spans). *)

open Relpipe_model

type origin =
  | From_text  (** parsed from the instance file format *)
  | From_value  (** wrapped from a constructed [Instance.t] *)

type stage = { work : float; output : float; span : Relpipe_util.Loc.span option }

type proc = { speed : float; failure : float; span : Relpipe_util.Loc.span option }

type link = {
  a : Textio.raw_endpoint;
  b : Textio.raw_endpoint;
  bw : float;
  span : Relpipe_util.Loc.span option;
}

type t = {
  origin : origin;
  input : (float * Relpipe_util.Loc.span option) option;
  stages : stage array;
  procs : proc array;
  default_bw : (float * Relpipe_util.Loc.span option) option;
  links : link list;  (** declarations, in source order (raw only) *)
  bandwidth : int -> int -> float option;
      (** effective symmetric bandwidth over endpoint indices
          [0 = Pin], [1..m] = processors, [m+1] = Pout; [None] when the
          pair is undeclared and there is no default *)
}

val num_procs : t -> int

val num_stages : t -> int

val endpoint_index : m:int -> Textio.raw_endpoint -> int option
(** [None] when a processor reference is out of [0..m-1]. *)

val endpoint_name : m:int -> int -> string
(** ["in"], ["out"] or ["P<u>"] for an endpoint index. *)

val of_raw : Textio.raw -> t

val of_instance : Instance.t -> t
