(** A single lint finding: a stable rule ID, a severity, a message and an
    optional source span (findings on constructed in-memory values have no
    span). *)

type t = {
  rule : string;  (** stable ID, e.g. ["RP-I001"] *)
  severity : Severity.t;
  message : string;
  span : Relpipe_util.Loc.span option;
}

val make :
  rule:string ->
  severity:Severity.t ->
  ?span:Relpipe_util.Loc.span ->
  ('a, Format.formatter, unit, t) format4 ->
  'a
(** [make ~rule ~severity ?span fmt ...] formats the message. *)

val compare : t -> t -> int
(** Worst severity first, then by source position, then rule ID. *)

val sort : t list -> t list

val max_severity : t list -> Severity.t option

val exit_code : t list -> int
(** {!Severity.exit_code} of {!max_severity}. *)

val errors : t list -> t list
(** Only the [Error]-level findings. *)

val pp : ?file:string -> Format.formatter -> t -> unit
(** ["file:LINE:COL-COL: severity[RULE]: message"]; the position part is
    omitted for spanless findings, the file part when [file] is absent. *)

val to_string : ?file:string -> t -> string

(** {1 JSON} *)

val json_escape : string -> string
(** Body of a JSON string literal (no surrounding quotes). *)

val to_json : t -> string
(** One finding as a JSON object:
    [{"rule":…,"severity":…,"message":…,"span":{"line":…,"col":…,
    "end_line":…,"end_col":…}}]; ["span"] is [null] when absent. *)

val report_to_json : ?file:string -> t list -> string
(** The full report object documented in the README:
    [{"version":1,"file":…,"findings":[…],
    "summary":{"error":N,"warning":N,"hint":N}}]. *)
