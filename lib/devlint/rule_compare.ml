(* Family "compare": the AST-grounded replacement for the old
   tools/forbid.sh grep.  Works on the untyped parsetree, so it sees
   shadowed/opened/partially-applied forms the grep could not (a bare
   [compare] passed to [List.sort], [Stdlib.(=)] under an alias, a float
   literal compared with [=] across a line break) — at the price of the
   usual untyped blind spot: [a.speed = b.speed] on two float fields is
   invisible without types, which is why the dynamic oracles stay. *)

open Parsetree
module A = Ast_util

let rule ~id ~severity ~title ~rationale ~example =
  Drule.register
    { Drule.id; family = "compare"; severity; title; rationale; example }

let r_poly =
  rule ~id:"RP-S101" ~severity:Drule.Severity.Error
    ~title:"polymorphic compare"
    ~rationale:
      "Structural compare mis-handles NaN (compare nan nan = 0 yet nan <> \
       nan) and depends on representation for abstract types; every \
       comparator must be typed (Int.compare, Float.compare, \
       String.compare, a module's own compare)."
    ~example:"let sorted xs = List.sort compare xs"

let r_float_eq =
  rule ~id:"RP-S102" ~severity:Drule.Severity.Error
    ~title:"polymorphic equality on floats"
    ~rationale:
      "[=]/[<>] on a float operand is a polymorphic structural walk: slow, \
       NaN-hostile, and a determinism trap once the operand reaches cache \
       keys or output.  Use Float.equal, or Relpipe_util.Float_cmp for \
       tolerant ordering."
    ~example:"let is_free x = x = 0.0"

let r_hash =
  rule ~id:"RP-S103" ~severity:Drule.Severity.Warning
    ~title:"polymorphic structural hash"
    ~rationale:
      "Hashtbl.hash walks the runtime representation: NaN payloads, \
       closures and abstract types hash unstably across builds, so any \
       cache key or output derived from it is not reproducible.  Hash a \
       canonical encoding instead (as Service.Canon does)."
    ~example:"let key inst = Hashtbl.hash inst"

let rules = [ r_poly; r_float_eq; r_hash ]

(* ------------------------------------------------------------------ *)

let poly_compare_paths =
  [ "Stdlib.compare"; "Pervasives.compare"; "Stdlib.Pervasives.compare" ]

let stdlib_poly_ops =
  [ "Stdlib.="; "Stdlib.<>"; "Stdlib.<"; "Stdlib.>"; "Stdlib.<="; "Stdlib.>=" ]

let hash_paths = [ "Hashtbl.hash"; "Hashtbl.seeded_hash"; "Hashtbl.hash_param" ]

(* Stdlib float functions whose result is float: an application of one of
   these is syntactic evidence the operand of [=] is a float. *)
let float_ops =
  [ "+."; "-."; "*."; "/."; "**"; "~-."; "~+." ]

let float_fns =
  [
    "sqrt"; "exp"; "exp2"; "log"; "log10"; "log2"; "log1p"; "expm1"; "cos";
    "sin"; "tan"; "acos"; "asin"; "atan"; "atan2"; "hypot"; "cosh"; "sinh";
    "tanh"; "ceil"; "floor"; "copysign"; "abs_float"; "mod_float";
    "float_of_int"; "float_of_string"; "float"; "ldexp"; "frexp";
  ]

let float_consts =
  [
    "infinity"; "neg_infinity"; "nan"; "epsilon_float"; "max_float";
    "min_float";
  ]

(* Float.* functions that do NOT return float (so [Float.equal a b = x]
   is not a float comparison). *)
let float_module_non_float =
  [
    "Float.equal"; "Float.compare"; "Float.is_finite"; "Float.is_nan";
    "Float.is_integer"; "Float.to_int"; "Float.to_string"; "Float.sign_bit";
    "Float.classify_float"; "Float.hash"; "Float.seeded_hash";
  ]

let float_module_path p =
  String.length p > 6
  && String.sub p 0 6 = "Float."
  && not (List.mem p float_module_non_float)

let is_floatish (e : expression) =
  match e.pexp_desc with
  | Pexp_constant (Pconst_float _) -> true
  | Pexp_ident _ -> (
      match A.expr_path e with
      | Some p -> List.mem p float_consts || float_module_path p
      | None -> false)
  | Pexp_apply (f, _) -> (
      match A.expr_path f with
      | Some p ->
          List.mem p float_ops || List.mem p float_fns || float_module_path p
      | None -> false)
  | _ -> false

let check (src : Source.t) out =
  (* A file that defines its own [compare] (Severity, Loc, ...) uses the
     bare name for that typed comparator; exempt the whole file rather
     than attempt lexical resolution on the untyped tree. *)
  let defines_compare = A.structure_binds "compare" src.Source.structure in
  let rebinds op = A.structure_binds op src.Source.structure in
  let eq_rebound = rebinds "=" and ne_rebound = rebinds "<>" in
  let span (e : expression) = A.span_of_location e.pexp_loc in
  A.iter_exprs
    (fun e ->
      (match e.pexp_desc with
      | Pexp_ident _ -> (
          match A.expr_path e with
          | Some "compare" when not defines_compare ->
              out
                (Drule.diag r_poly ~span:(span e)
                   "bare polymorphic compare; use a typed comparator \
                    (Int.compare, Float.compare, String.compare, or the \
                    module's own compare)")
          | Some p when List.mem p poly_compare_paths ->
              out
                (Drule.diag r_poly ~span:(span e)
                   "%s is the polymorphic compare; use a typed comparator" p)
          | Some p when List.mem p stdlib_poly_ops ->
              out
                (Drule.diag r_poly ~span:(span e)
                   "%s is a polymorphic comparison operator; use the typed \
                    equivalent (Int.equal, Float.compare, ...)"
                   p)
          | Some p when List.mem p hash_paths ->
              out
                (Drule.diag r_hash ~span:(span e)
                   "%s is the polymorphic structural hash; hash a canonical \
                    encoding instead"
                   p)
          | _ -> ())
      | _ -> ());
      match e.pexp_desc with
      | Pexp_apply (op, [ (Asttypes.Nolabel, a); (Asttypes.Nolabel, b) ]) -> (
          match A.expr_path op with
          | Some "=" when (not eq_rebound) && (is_floatish a || is_floatish b)
            ->
              out
                (Drule.diag r_float_eq ~span:(span e)
                   "float equality via polymorphic =; use Float.equal (or \
                    Relpipe_util.Float_cmp for tolerance)")
          | Some "<>" when (not ne_rebound) && (is_floatish a || is_floatish b)
            ->
              out
                (Drule.diag r_float_eq ~span:(span e)
                   "float disequality via polymorphic <>; use \
                    not (Float.equal ...) (or Relpipe_util.Float_cmp)")
          | _ -> ())
      | _ -> ())
    src.Source.structure
