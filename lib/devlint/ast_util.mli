(** Small helpers over the compiler-libs parsetree shared by the devlint
    rules: location conversion, identifier paths, scope approximation. *)

val span_of_location : Location.t -> Relpipe_util.Loc.span
(** Convert a compiler location to the repo's 1-based [Loc.span]. *)

val flatten : Longident.t -> string list option
(** Dotted-path components; [None] for functor applications. *)

val path_of_ident : Longident.t -> string option
(** ["Module.sub.name"]; [None] for functor applications. *)

val expr_path : Parsetree.expression -> string option
(** The dotted path when the expression is an identifier. *)

val path_suffix : int -> string -> string
(** Last [n] dot-separated components (the whole path when shorter). *)

val string_literal : Parsetree.expression -> string option

val head_ident : Parsetree.expression -> string option
(** Head variable of a projection chain ([t.a.b] gives ["t"]); [None]
    for module-qualified or computed receivers. *)

val pattern_names : string list -> Parsetree.pattern -> string list
(** Names bound by one pattern, prepended to the accumulator. *)

val bound_names : Parsetree.expression -> string list
(** Every name bound by any pattern inside the expression (an
    over-approximation of lexical scope: names free w.r.t. this set are
    certainly not locals). *)

val structure_binds : string -> Parsetree.structure -> bool
(** Does any value binding in the file bind this name? *)

val iter_exprs : (Parsetree.expression -> unit) -> Parsetree.structure -> unit
(** Visit every expression exactly once, in syntax order. *)

val iter_child_exprs :
  (Parsetree.expression -> unit) -> Parsetree.expression -> unit
(** Visit the immediate sub-expressions only — the recursion step for
    handwritten walks that thread state through the descent. *)

val bound_functions :
  Parsetree.structure -> (string, Parsetree.expression) Hashtbl.t
(** [let]-bound functions of the file, name -> defining [fun]/[function]
    expression (last binding wins on shadowing). *)
