(** Family "obs-names" — metric/span name literals must match the
    doc/index.mld contract grammar. *)

val rules : Drule.t list

val check : Source.t -> (Drule.Diagnostic.t -> unit) -> unit
