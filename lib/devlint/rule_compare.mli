(** Family "compare" — AST-grounded poly-compare/float-equality lint,
    the replacement for the retired tools/forbid.sh grep. *)

val rules : Drule.t list

val check : Source.t -> (Drule.Diagnostic.t -> unit) -> unit
