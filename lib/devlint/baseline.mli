(** The allowlist of vetted devlint exceptions (devlint.baseline): one
    "RULE-ID PATH[:LINE] [-- reason]" per line, '#' comments.  Matched
    findings are dropped; entries that match nothing are reported as
    stale by the driver. *)

type entry = {
  rule : string;
  path : string;
  line : int option;
  reason : string;
  mutable used : bool;
}

type t = { source : string; entries : entry list }

val empty : t

val parse : source:string -> string -> (t, string) result

val load : string -> (t, string) result

val matches : t -> file:string -> Relpipe_analysis.Diagnostic.t -> bool
(** Marks the matching entry used. *)

val unused : t -> entry list
