module Loc = Relpipe_util.Loc

let span_of_location (l : Location.t) =
  let pos (p : Lexing.position) =
    { Loc.line = p.Lexing.pos_lnum; col = p.Lexing.pos_cnum - p.Lexing.pos_bol + 1 }
  in
  { Loc.start = pos l.Location.loc_start; stop = pos l.Location.loc_end }

let rec flatten = function
  | Longident.Lident s -> Some [ s ]
  | Longident.Ldot (p, s) -> (
      match flatten p with Some l -> Some (l @ [ s ]) | None -> None)
  | Longident.Lapply _ -> None

let path_of_ident lid =
  match flatten lid with
  | Some segs -> Some (String.concat "." segs)
  | None -> None

let expr_path (e : Parsetree.expression) =
  match e.Parsetree.pexp_desc with
  | Parsetree.Pexp_ident { txt; _ } -> path_of_ident txt
  | _ -> None

(* Last [n] dot-separated components of a path ("Relpipe_service.Pool.map"
   with n = 2 gives "Pool.map"); the whole path when it is shorter. *)
let path_suffix n path =
  let segs = String.split_on_char '.' path in
  let len = List.length segs in
  if len <= n then path
  else String.concat "." (List.filteri (fun i _ -> i >= len - n) segs)

let string_literal (e : Parsetree.expression) =
  match e.Parsetree.pexp_desc with
  | Parsetree.Pexp_constant (Parsetree.Pconst_string (s, _, _)) -> Some s
  | _ -> None

(* Head identifier of a projection chain: [t] and [t.a.b] give ["t"];
   module-qualified or computed receivers give [None] (they name global
   or unknowable storage, which callers treat as shared). *)
let rec head_ident (e : Parsetree.expression) =
  match e.Parsetree.pexp_desc with
  | Parsetree.Pexp_ident { txt = Longident.Lident s; _ } -> Some s
  | Parsetree.Pexp_field (e, _) -> head_ident e
  | _ -> None

let rec pattern_names acc (p : Parsetree.pattern) =
  let open Parsetree in
  match p.ppat_desc with
  | Ppat_var { txt; _ } -> txt :: acc
  | Ppat_alias (p, { txt; _ }) -> pattern_names (txt :: acc) p
  | Ppat_tuple ps | Ppat_array ps -> List.fold_left pattern_names acc ps
  | Ppat_construct (_, Some (_, p)) | Ppat_variant (_, Some p) ->
      pattern_names acc p
  | Ppat_record (fields, _) ->
      List.fold_left (fun acc (_, p) -> pattern_names acc p) acc fields
  | Ppat_or (a, b) -> pattern_names (pattern_names acc a) b
  | Ppat_constraint (p, _) | Ppat_lazy p | Ppat_open (_, p) | Ppat_exception p
    ->
      pattern_names acc p
  | _ -> acc

(* Every name bound by any pattern inside [e], including nested closures
   and match arms: a deliberate over-approximation of lexical scope, so
   "free in [e]" (not in this set) never misclassifies a local as
   shared. *)
let bound_names (e : Parsetree.expression) =
  let acc = ref [] in
  let it =
    {
      Ast_iterator.default_iterator with
      pat =
        (fun it p ->
          acc := pattern_names !acc p;
          Ast_iterator.default_iterator.pat it p);
    }
  in
  it.expr it e;
  !acc

(* [true] when some value binding anywhere in [structure] binds [name]
   (used to exempt files that define their own typed [compare]). *)
let structure_binds name structure =
  let found = ref false in
  let it =
    {
      Ast_iterator.default_iterator with
      value_binding =
        (fun it vb ->
          if List.mem name (pattern_names [] vb.Parsetree.pvb_pat) then
            found := true;
          Ast_iterator.default_iterator.value_binding it vb);
    }
  in
  it.structure it structure;
  !found

(* Visit every expression of [structure] exactly once, in syntax order. *)
let iter_exprs f structure =
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it e ->
          f e;
          Ast_iterator.default_iterator.expr it e);
    }
  in
  it.structure it structure

(* Apply [f] to each expression strictly inside [e] that is reachable
   without crossing another expression node — the one-level recursion
   step for handwritten walks that thread state (see Rule_race). *)
let iter_child_exprs f (e : Parsetree.expression) =
  let it =
    { Ast_iterator.default_iterator with expr = (fun _ c -> f c) }
  in
  Ast_iterator.default_iterator.expr it e

(* Collect [let]-bound functions of the file: name -> defining expression.
   Shadowed names keep the last binding (good enough for a linter). *)
let bound_functions structure =
  let tbl = Hashtbl.create 16 in
  let it =
    {
      Ast_iterator.default_iterator with
      value_binding =
        (fun it vb ->
          (match vb.Parsetree.pvb_pat.Parsetree.ppat_desc with
          | Parsetree.Ppat_var { txt; _ } -> (
              match vb.Parsetree.pvb_expr.Parsetree.pexp_desc with
              | Parsetree.Pexp_fun _ | Parsetree.Pexp_function _ ->
                  Hashtbl.replace tbl txt vb.Parsetree.pvb_expr
              | _ -> ())
          | _ -> ());
          Ast_iterator.default_iterator.value_binding it vb);
    }
  in
  it.structure it structure;
  tbl
