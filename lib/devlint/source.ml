module Loc = Relpipe_util.Loc

type t = { path : string; text : string; structure : Parsetree.structure }

type parse_error = { span : Loc.span; reason : string }

let normalize_path p =
  let p = String.concat "/" (String.split_on_char '\\' p) in
  if String.length p > 2 && String.sub p 0 2 = "./" then
    String.sub p 2 (String.length p - 2)
  else p

let parse_text ~path text =
  let path = normalize_path path in
  let lexbuf = Lexing.from_string text in
  Location.init lexbuf path;
  match Parse.implementation lexbuf with
  | structure -> Ok { path; text; structure }
  | exception Syntaxerr.Error err ->
      let span = Ast_util.span_of_location (Syntaxerr.location_of_error err) in
      Error { span; reason = "syntax error" }
  | exception Lexer.Error (_, loc) ->
      Error { span = Ast_util.span_of_location loc; reason = "lexical error" }

let load path =
  match In_channel.with_open_text path In_channel.input_all with
  | text -> parse_text ~path text
  | exception Sys_error msg ->
      Error { span = Loc.dummy; reason = msg }
