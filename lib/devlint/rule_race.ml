(* Family "race": the lightweight static race gate ahead of the parallel
   B&B roadmap item.  It finds closures that run on other domains —
   arguments of Service.Pool.map and Domain.spawn, either written inline
   or [let]-bound in the same file — and flags writes to mutable state
   the closure does not itself bind: [r := e] / incr / decr, mutable
   field assignment, Array/Bytes element writes (the [a.(i) <- v] sugar
   parses as Array.set, so both spellings are caught), and in-place
   Hashtbl/Buffer/Queue/Stack mutation.

   Allowed without findings: writes whose target is bound inside the
   closure (each worker's own state), anything through Atomic, and
   writes under a lock — inside [Mutex.protect]'s callback, or between
   [Mutex.lock] and [Mutex.unlock] in the same statement sequence.

   The scope test is an over-approximation (any name bound anywhere in
   the closure counts as local), so it under-flags rather than spam;
   per-slot disciplines the analysis cannot see (Pool's own result
   array) carry an in-file `devlint: allow` with the safety argument. *)

open Parsetree
module A = Ast_util

let rule ~id ~severity ~title ~rationale ~example =
  Drule.register
    { Drule.id; family = "race"; severity; title; rationale; example }

let r_shared_write =
  rule ~id:"RP-S301" ~severity:Drule.Severity.Error
    ~title:"unsynchronized shared write in a parallel closure"
    ~rationale:
      "A closure submitted to Service.Pool or Domain.spawn runs \
       concurrently with its creator; writing a ref, mutable field, array \
       slot or Hashtbl it captured is a data race under OCaml 5's memory \
       model unless the access goes through Atomic, a Mutex, or a \
       documented per-slot ownership discipline."
    ~example:
      "let hits = ref 0 in\n\
       Pool.map ~workers:4 (fun x -> incr hits; x) jobs"

let rules = [ r_shared_write ]

(* ------------------------------------------------------------------ *)

let entry_points = [ "Pool.map"; "Domain.spawn" ]

(* Functions that mutate their first argument in place. *)
let mutator_suffixes =
  [
    "Array.set"; "Array.unsafe_set"; "Array.fill"; "Array.blit";
    "Bytes.set"; "Bytes.unsafe_set"; "Bytes.fill"; "Bytes.blit";
    "Hashtbl.add"; "Hashtbl.replace"; "Hashtbl.remove"; "Hashtbl.reset";
    "Hashtbl.clear"; "Hashtbl.filter_map_inplace"; "Buffer.add_string";
    "Buffer.add_char"; "Buffer.add_bytes"; "Buffer.add_substring";
    "Buffer.clear"; "Buffer.reset"; "Buffer.truncate"; "Queue.push";
    "Queue.add"; "Queue.pop"; "Queue.take"; "Queue.clear"; "Queue.transfer";
    "Stack.push"; "Stack.pop"; "Stack.clear";
  ]

let is_function (e : expression) =
  match e.pexp_desc with Pexp_fun _ | Pexp_function _ -> true | _ -> false

let path_is suffixes e =
  match A.expr_path e with
  | Some p -> List.mem (A.path_suffix 2 p) suffixes
  | None -> false

let analyze ~entry (callback : expression) out =
  let bound = A.bound_names callback in
  (* [Some n] for a projection chain headed by a local name, [None] for
     module-qualified or computed targets (certainly not closure-local). *)
  let local = function Some n -> List.mem n bound | None -> false in
  let flag span what name =
    if not (local name) then
      out
        (Drule.diag r_shared_write ~span
           "%s of %s captured by a closure given to %s; use Atomic, a \
            Mutex, or a per-worker slot"
           what
           (match name with Some n -> n | None -> "a shared value")
           entry)
  in
  let rec walk locked (e : expression) =
    match e.pexp_desc with
    | Pexp_setfield (recv, _, v) ->
        if not locked then
          flag (A.span_of_location e.pexp_loc) "mutable-field write"
            (A.head_ident recv);
        walk locked recv;
        walk locked v
    | Pexp_apply (f, args) ->
        (match A.expr_path f with
        | Some ("Mutex.protect" | "Stdlib.Mutex.protect") ->
            (* The callback argument runs under the lock. *)
            List.iter
              (fun (_, (a : expression)) ->
                if is_function a then walk true a else walk locked a)
              args
        | Some ((":=" | "incr" | "decr") as op) when not locked -> (
            (match args with
            | (Asttypes.Nolabel, target) :: _ -> (
                match target.pexp_desc with
                | Pexp_ident _ | Pexp_field _ ->
                    flag (A.span_of_location e.pexp_loc)
                      (if op = ":=" then "ref assignment" else "ref update")
                      (A.head_ident target)
                | _ -> ())
            | _ -> ());
            List.iter (fun (_, a) -> walk locked a) args)
        | Some p
          when (not locked) && List.mem (A.path_suffix 2 p) mutator_suffixes
          -> (
            (match args with
            | (Asttypes.Nolabel, target) :: _ ->
                flag (A.span_of_location e.pexp_loc)
                  (Printf.sprintf "in-place %s" (A.path_suffix 2 p))
                  (A.head_ident target)
            | _ -> ());
            List.iter (fun (_, a) -> walk locked a) args)
        | _ ->
            walk locked f;
            List.iter (fun (_, a) -> walk locked a) args)
    | Pexp_sequence _ ->
        (* Unroll the statement sequence, toggling the lock flag on
           Mutex.lock/Mutex.unlock statements. *)
        let rec stmts (e : expression) acc =
          match e.pexp_desc with
          | Pexp_sequence (a, b) -> stmts b (a :: acc)
          | _ -> List.rev (e :: acc)
        in
        let is_lock_call names (s : expression) =
          match s.pexp_desc with
          | Pexp_apply (f, _) -> path_is names f
          | _ -> false
        in
        ignore
          (List.fold_left
             (fun locked s ->
               if is_lock_call [ "Mutex.lock" ] s then true
               else if is_lock_call [ "Mutex.unlock" ] s then false
               else begin
                 walk locked s;
                 locked
               end)
             locked (stmts e []))
    | _ -> A.iter_child_exprs (walk locked) e
  in
  walk false callback

let check (src : Source.t) out =
  let lets = A.bound_functions src.Source.structure in
  let resolve (e : expression) =
    if is_function e then Some e
    else
      match e.pexp_desc with
      | Pexp_ident { txt = Longident.Lident n; _ } -> Hashtbl.find_opt lets n
      | _ -> None
  in
  A.iter_exprs
    (fun e ->
      match e.pexp_desc with
      | Pexp_apply (f, args) when path_is entry_points f ->
          let entry =
            match A.expr_path f with
            | Some p -> A.path_suffix 2 p
            | None -> "a parallel entry point"
          in
          (* First unlabeled argument is the submitted closure for both
             Pool.map (after ?obs/~workers) and Domain.spawn. *)
          let callback =
            List.find_map
              (fun (label, a) ->
                match label with
                | Asttypes.Nolabel -> resolve a
                | _ -> None)
              args
          in
          (match callback with Some c -> analyze ~entry c out | None -> ())
      | _ -> ())
    src.Source.structure
