(** A parsed [.ml] source file: the unit every devlint rule runs over. *)

type t = {
  path : string;  (** normalized ('/'-separated, no leading "./") *)
  text : string;
  structure : Parsetree.structure;
}

type parse_error = { span : Relpipe_util.Loc.span; reason : string }

val normalize_path : string -> string

val parse_text : path:string -> string -> (t, parse_error) result
(** Parse source text with the compiler's own parser (so devlint sees
    exactly the syntax the build sees). *)

val load : string -> (t, parse_error) result
(** Read and parse a file; IO errors carry the system message. *)
