(* Family "determinism": sources of run-to-run nondeterminism.  The
   repo's contract is byte-identical output for every worker count and
   every rerun; ambient randomness, wall-clock reads and unordered
   Hashtbl iteration are the three ways a PR can break that without
   failing a unit test.  Vetted exceptions (the injectable Obs.Clock is
   *the* sanctioned wall-clock reader; the bench harness measures real
   time on purpose) live in devlint.baseline. *)

module A = Ast_util

let rule ~id ~severity ~title ~rationale ~example =
  Drule.register
    { Drule.id; family = "determinism"; severity; title; rationale; example }

let r_random =
  rule ~id:"RP-S201" ~severity:Drule.Severity.Error
    ~title:"ambient randomness (Random.*)"
    ~rationale:
      "Stdlib Random draws from hidden global (or domain-local) state, so \
       results change run to run and domain to domain.  Every random draw \
       must come from a seeded Relpipe_util.Rng (SplitMix64) threaded \
       explicitly."
    ~example:"let jitter () = Random.float 1.0"

let r_wall_clock =
  rule ~id:"RP-S202" ~severity:Drule.Severity.Error
    ~title:"unclocked wall-time read"
    ~rationale:
      "Unix.gettimeofday/Unix.time/Sys.time reads make any value derived \
       from them irreproducible and break --virtual-clock replay.  Read \
       time through an injectable Relpipe_obs.Clock instead."
    ~example:"let t0 = Sys.time ()"

let r_domain_self =
  rule ~id:"RP-S203" ~severity:Drule.Severity.Warning
    ~title:"scheduling-dependent Domain.self"
    ~rationale:
      "Domain identifiers depend on spawn order and worker count; a value \
       derived from Domain.self can differ across --workers settings, \
       violating the cross-worker byte-identity contract.  Index jobs by \
       submission order instead (as Service.Pool does)."
    ~example:"let tag = (Domain.self () :> int)"

let r_hashtbl_order =
  rule ~id:"RP-S204" ~severity:Drule.Severity.Warning
    ~title:"unordered Hashtbl iteration"
    ~rationale:
      "Hashtbl.iter/fold order is unspecified and changes with the \
       hash/population history, so anything accumulated in iteration order \
       can reach output or cache keys nondeterministically.  Sort the \
       bindings first, or iterate a sorted key list (suppress in place \
       when a sort provably erases the order)."
    ~example:"let dump t = Hashtbl.iter print t"

let rules = [ r_random; r_wall_clock; r_domain_self; r_hashtbl_order ]

(* ------------------------------------------------------------------ *)

let wall_clock_paths =
  [ "Unix.gettimeofday"; "Unix.time"; "Unix.times"; "Unix.clock"; "Sys.time" ]

let hashtbl_order_paths =
  [
    "Hashtbl.iter"; "Hashtbl.fold"; "Hashtbl.to_seq"; "Hashtbl.to_seq_keys";
    "Hashtbl.to_seq_values";
  ]

let check (src : Source.t) out =
  let span (e : Parsetree.expression) =
    A.span_of_location e.Parsetree.pexp_loc
  in
  A.iter_exprs
    (fun e ->
      match e.Parsetree.pexp_desc with
      | Parsetree.Pexp_ident { txt; _ } -> (
          match A.flatten txt with
          | Some ("Random" :: _ :: _ as segs) ->
              out
                (Drule.diag r_random ~span:(span e)
                   "%s draws from ambient global state; thread a seeded \
                    Relpipe_util.Rng instead"
                   (String.concat "." segs))
          | Some segs -> (
              let p = String.concat "." segs in
              if List.mem p wall_clock_paths then
                out
                  (Drule.diag r_wall_clock ~span:(span e)
                     "%s reads the wall clock; route time through an \
                      injectable Relpipe_obs.Clock"
                     p)
              else
                match p with
                | "Domain.self" ->
                    out
                      (Drule.diag r_domain_self ~span:(span e)
                         "Domain.self is scheduling-dependent; key on \
                          submission order instead")
                | _ ->
                    if List.mem p hashtbl_order_paths then
                      out
                        (Drule.diag r_hashtbl_order ~span:(span e)
                           "%s iterates in unspecified order; sort the \
                            bindings before they can reach output"
                           p))
          | None -> ())
      | _ -> ())
    src.Source.structure
