(** The devlint rule registry: metadata for source-level rules over
    parsed [.ml] files, reusing the [relpipe lint] severity lattice and
    diagnostics (spans, JSON) from {!Relpipe_analysis}.  The checks
    themselves live in the per-family [Rule_*] modules, which the
    {!Driver} runs. *)

module Severity = Relpipe_analysis.Severity
module Diagnostic = Relpipe_analysis.Diagnostic

type t = {
  id : string;  (** stable, e.g. ["RP-S101"] *)
  family : string;
      (** ["compare"], ["determinism"], ["race"], ["obs-names"], ["driver"] *)
  severity : Severity.t;
  title : string;
  rationale : string;
  example : string;  (** minimal violating snippet *)
}

val register : t -> t
(** Add to the registry (raises on duplicate IDs); returns the rule. *)

val find : string -> t option

val all : unit -> t list
(** Registered rules in ID order. *)

val families : unit -> string list
(** Distinct family names, sorted. *)

val diag :
  t ->
  ?span:Relpipe_util.Loc.span ->
  ('a, Format.formatter, unit, Diagnostic.t) format4 ->
  'a
(** Diagnostic constructor pinned to the rule's ID and severity. *)
