(** Family "determinism" — ambient randomness, wall-clock reads,
    scheduling-dependent identity and unordered Hashtbl iteration. *)

val rules : Drule.t list

val check : Source.t -> (Drule.Diagnostic.t -> unit) -> unit
