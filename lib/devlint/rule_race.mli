(** Family "race" — unsynchronized writes to captured mutable state
    inside closures submitted to Service.Pool.map or Domain.spawn. *)

val rules : Drule.t list

val check : Source.t -> (Drule.Diagnostic.t -> unit) -> unit
