(** The devlint driver: discover [.ml] files, parse them with the
    compiler's parser, run every (or a selected family of) rule pass,
    apply in-source suppressions and the baseline, and render the
    surviving findings deterministically.

    Exit-code contract mirrors [relpipe lint]: 2 if any error survives,
    1 if any warning, 0 otherwise (hints are informational). *)

module Severity = Relpipe_analysis.Severity
module Diagnostic = Relpipe_analysis.Diagnostic

val rules : unit -> Drule.t list
(** Full catalog in ID order (forces every rule family to register). *)

val passes : (string * (Source.t -> (Diagnostic.t -> unit) -> unit)) list
(** The rule families, keyed as [--family] selects them. *)

type finding = { file : string; diag : Diagnostic.t }

type report = {
  findings : finding list;  (** survivors, sorted (file, span, rule) *)
  files : int;  (** files analyzed *)
  suppressed : int;  (** dropped by in-source [devlint: allow] comments *)
  baselined : int;  (** dropped by baseline entries *)
}

val suppressions : string -> (int * string) list
(** [(line, rule)] pairs suppressed by ["devlint: allow RP-..."] comments
    (each comment covers its own line and the next). *)

val run :
  ?baseline:Baseline.t ->
  ?families:string list ->
  (string * string) list ->
  report
(** Run over [(path, text)] pairs.  Unparsable sources become RP-S001
    findings; stale baseline entries become RP-S002 hints. *)

val discover : string list -> string list
(** All [.ml] files under the given roots, sorted; skips [_build],
    [.git], [fixtures] and [snapshots] directories. *)

val run_paths :
  ?baseline:Baseline.t -> ?families:string list -> string list -> report

val render_text : report -> string
(** One "file:span: severity[rule]: message" line per finding plus a
    byte-stable summary line. *)

val render_json : report -> string
(** Deterministic single-line JSON report (schema version 1). *)

val exit_code : report -> int
