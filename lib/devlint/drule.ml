module Severity = Relpipe_analysis.Severity
module Diagnostic = Relpipe_analysis.Diagnostic

type t = {
  id : string;
  family : string;
  severity : Severity.t;
  title : string;
  rationale : string;
  example : string;
}

let registry : (string, t) Hashtbl.t = Hashtbl.create 16

let register rule =
  if Hashtbl.mem registry rule.id then
    invalid_arg (Printf.sprintf "Drule.register: duplicate rule ID %s" rule.id);
  Hashtbl.add registry rule.id rule;
  rule

let find id = Hashtbl.find_opt registry id

let all () =
  (* devlint: allow RP-S204 — the fold's order is erased by the sort *)
  Hashtbl.fold (fun _ r acc -> r :: acc) registry []
  |> List.sort (fun a b -> String.compare a.id b.id)

let families () =
  List.sort_uniq String.compare (List.map (fun r -> r.family) (all ()))

let diag rule ?span fmt =
  Diagnostic.make ~rule:rule.id ~severity:rule.severity ?span fmt
