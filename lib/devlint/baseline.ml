type entry = {
  rule : string;
  path : string;
  line : int option;
  reason : string;
  mutable used : bool;
}

type t = { source : string; entries : entry list }

let empty = { source = "<none>"; entries = [] }

(* First occurrence of " -- " splits the entry from its reason. *)
let split_reason line =
  let marker = " -- " in
  let n = String.length line and m = String.length marker in
  let rec find i =
    if i + m > n then None
    else if String.sub line i m = marker then Some i
    else find (i + 1)
  in
  match find 0 with
  | Some i ->
      (String.sub line 0 i, String.trim (String.sub line (i + m) (n - i - m)))
  | None -> (line, "")

(* "RP-S202 lib/obs/clock.ml[:LINE] [-- reason]" — one vetted exception
   per line; blank lines and #-comments ignored. *)
let parse_line lineno line =
  let line, reason = split_reason line in
  let line = String.trim line in
  if line = "" || line.[0] = '#' then Ok None
  else
    match
      String.split_on_char ' ' line |> List.filter (fun s -> s <> "")
    with
    | [ rule; target ] ->
        let path, ln =
          match String.rindex_opt target ':' with
          | Some i -> (
              let suffix = String.sub target (i + 1) (String.length target - i - 1) in
              match int_of_string_opt suffix with
              | Some n -> (String.sub target 0 i, Some n)
              | None -> (target, None))
          | None -> (target, None)
        in
        Ok
          (Some
             {
               rule;
               path = Source.normalize_path path;
               line = ln;
               reason;
               used = false;
             })
    | _ ->
        Error
          (Printf.sprintf
             "line %d: expected \"RULE-ID PATH[:LINE] [-- reason]\", got %S"
             lineno line)

let parse ~source text =
  let lines = String.split_on_char '\n' text in
  let entries = ref [] and err = ref None in
  List.iteri
    (fun i line ->
      if !err = None then
        match parse_line (i + 1) line with
        | Ok (Some e) -> entries := e :: !entries
        | Ok None -> ()
        | Error msg -> err := Some msg)
    lines;
  match !err with
  | Some msg -> Error msg
  | None -> Ok { source; entries = List.rev !entries }

let load path =
  match In_channel.with_open_text path In_channel.input_all with
  | text -> parse ~source:path text
  | exception Sys_error msg -> Error msg

(* A finding is vetted when an entry matches its rule, file, and (if the
   entry pins one) its start line.  Matching marks the entry used, so
   the driver can report stale entries. *)
let matches t ~file (d : Relpipe_analysis.Diagnostic.t) =
  let file = Source.normalize_path file in
  let start_line =
    match d.Relpipe_analysis.Diagnostic.span with
    | Some s -> Some s.Relpipe_util.Loc.start.Relpipe_util.Loc.line
    | None -> None
  in
  List.exists
    (fun e ->
      let hit =
        e.rule = d.Relpipe_analysis.Diagnostic.rule
        && e.path = file
        && match e.line with None -> true | Some l -> start_line = Some l
      in
      if hit then e.used <- true;
      hit)
    t.entries

let unused t = List.filter (fun e -> not e.used) t.entries
