(* Family "obs-names": every metric/span name literal handed to the
   observability layer must match the contract grammar documented in
   doc/index.mld — dot-separated segments of lowercase letters, digits
   and underscores, at least two of them, rooted at one of the
   documented namespaces.  Names built by concatenation are checked on
   their literal head ("fuzz.oracle." ^ name ^ ...); a name with no
   literal head at all is only a hint (the plumbing layers forward
   caller-validated names). *)

open Parsetree
module A = Ast_util

let rule ~id ~severity ~title ~rationale ~example =
  Drule.register
    { Drule.id; family = "obs-names"; severity; title; rationale; example }

let r_bad_name =
  rule ~id:"RP-S401" ~severity:Drule.Severity.Error
    ~title:"metric/span name violates the contract grammar"
    ~rationale:
      "doc/index.mld documents every recorded name; dashboards, the prof \
       subcommand and the golden snapshots key on them.  A name must be \
       dot-separated lowercase segments ([a-z][a-z0-9_]*), at least two \
       deep, rooted at engine/pool/core/fuzz/serve/churn/cert/atlas/stream."
    ~example:"Obs.incr obs \"Solved-Requests\""

let r_dynamic_name =
  rule ~id:"RP-S402" ~severity:Drule.Severity.Hint
    ~title:"metric/span name is not statically checkable"
    ~rationale:
      "A name with no literal prefix cannot be checked against the \
       doc/index.mld contract; make the prefix literal where possible, or \
       suppress at forwarding layers whose callers are checked."
    ~example:"Obs.incr obs (prefix ^ \".hits\")"

let rules = [ r_bad_name; r_dynamic_name ]

(* ------------------------------------------------------------------ *)

let roots =
  [ "atlas"; "cert"; "churn"; "core"; "engine"; "fuzz"; "pool"; "serve";
    "stream" ]

(* Recording entry points, by 2-component path suffix, with the position
   of the name among the unlabeled arguments ([`Label] for ~name). *)
let name_slots =
  [
    ("Obs.add", `Nolabel 1); ("Obs.incr", `Nolabel 1);
    ("Obs.observe", `Nolabel 1); ("Obs.gauge_set", `Nolabel 1);
    ("Obs.gauge_max", `Nolabel 1); ("Obs.span", `Nolabel 1);
    ("Obs.instant", `Nolabel 1); ("Metric.counter", `Nolabel 1);
    ("Metric.gauge", `Nolabel 1); ("Metric.histogram", `Nolabel 1);
    ("Trace.span", `Nolabel 1); ("Trace.instant", `Nolabel 1);
    ("Lru.create_in", `Label "name");
  ]

let seg_ok s =
  s <> ""
  && (match s.[0] with 'a' .. 'z' -> true | _ -> false)
  && String.for_all
       (function 'a' .. 'z' | '0' .. '9' | '_' -> true | _ -> false)
       s

(* [complete = false] checks a literal concatenation head: the trailing
   (possibly partial or empty) segment is dropped before validation. *)
let name_error ~complete name =
  let segs = String.split_on_char '.' name in
  let segs = if complete then segs else List.filteri (fun i _ -> i < List.length segs - 1) segs in
  match segs with
  | [] -> Some "empty name"
  | root :: rest ->
      if not (List.for_all seg_ok (root :: rest)) then
        Some "segments must match [a-z][a-z0-9_]* separated by dots"
      else if not (List.mem root roots) then
        Some
          (Printf.sprintf "root %S is not a documented namespace (%s)" root
             (String.concat "/" roots))
      else if complete && rest = [] then
        Some "a name needs at least two segments"
      else None

(* Leftmost operand of a ^-concatenation chain, when it is a literal. *)
let rec literal_head (e : expression) =
  match e.pexp_desc with
  | Pexp_constant (Pconst_string (s, _, _)) -> Some s
  | Pexp_apply (f, (Asttypes.Nolabel, a) :: _) -> (
      match A.expr_path f with
      | Some ("^" | "Stdlib.^") -> literal_head a
      | _ -> None)
  | _ -> None

let check (src : Source.t) out =
  A.iter_exprs
    (fun e ->
      match e.pexp_desc with
      | Pexp_apply (f, args) -> (
          let slot =
            match A.expr_path f with
            | Some p -> List.assoc_opt (A.path_suffix 2 p) name_slots
            | None -> None
          in
          match slot with
          | None -> ()
          | Some slot -> (
              let name_arg =
                match slot with
                | `Nolabel i ->
                    let unlabeled =
                      List.filter_map
                        (fun (l, a) ->
                          match l with Asttypes.Nolabel -> Some a | _ -> None)
                        args
                    in
                    List.nth_opt unlabeled i
                | `Label l ->
                    List.find_map
                      (fun (lab, a) ->
                        match lab with
                        | Asttypes.Labelled l' when l' = l -> Some a
                        | _ -> None)
                      args
              in
              match name_arg with
              | None -> ()
              | Some arg -> (
                  let span = A.span_of_location arg.pexp_loc in
                  match A.string_literal arg with
                  | Some name -> (
                      match name_error ~complete:true name with
                      | Some why ->
                          out
                            (Drule.diag r_bad_name ~span
                               "name %S violates the obs contract: %s" name
                               why)
                      | None -> ())
                  | None -> (
                      match literal_head arg with
                      | Some head -> (
                          match name_error ~complete:false head with
                          | Some why ->
                              out
                                (Drule.diag r_bad_name ~span
                                   "name prefix %S violates the obs \
                                    contract: %s"
                                   head why)
                          | None -> ())
                      | None ->
                          out
                            (Drule.diag r_dynamic_name ~span
                               "name has no literal prefix; the contract \
                                cannot be checked here")))))
      | _ -> ())
    src.Source.structure
