module Severity = Relpipe_analysis.Severity
module Diagnostic = Relpipe_analysis.Diagnostic
module Loc = Relpipe_util.Loc

(* Pseudo-rules owned by the driver itself. *)
let rule ~id ~severity ~title ~rationale ~example =
  Drule.register
    { Drule.id; family = "driver"; severity; title; rationale; example }

let r_parse =
  rule ~id:"RP-S001" ~severity:Severity.Error ~title:"source file does not parse"
    ~rationale:
      "devlint parses with the compiler's own parser; a file it cannot \
       parse cannot be vouched for (and will not build either)."
    ~example:"let x = (   (* unclosed *)"

let r_stale_baseline =
  rule ~id:"RP-S002" ~severity:Severity.Hint ~title:"stale baseline entry"
    ~rationale:
      "A devlint.baseline entry that matches no finding usually outlives \
       the code it vetted; prune it so the allowlist stays an honest \
       inventory of exceptions."
    ~example:"RP-S202 lib/gone.ml -- removed module"

(* The four rule families, keyed as `--family` selects them. *)
let passes =
  [
    ("compare", Rule_compare.check);
    ("determinism", Rule_determinism.check);
    ("race", Rule_race.check);
    ("obs-names", Rule_obs_names.check);
  ]

let rules () =
  ignore Rule_compare.rules;
  ignore Rule_determinism.rules;
  ignore Rule_race.rules;
  ignore Rule_obs_names.rules;
  Drule.all ()

(* ------------------------------------------------------------------ *)
(* In-source suppressions                                              *)
(* ------------------------------------------------------------------ *)

(* A comment containing "devlint: allow RP-Sxxx [RP-Syyy ...] [— reason]"
   suppresses those rules on its own line and the next one (so the
   comment can sit on the offending line or immediately above it). *)
let allow_marker = "devlint: allow"

let rule_ids_after line start =
  let n = String.length line in
  let is_id_char = function
    | 'A' .. 'Z' | '0' .. '9' | '-' -> true
    | _ -> false
  in
  let rec tokens i acc =
    if i >= n then acc
    else if is_id_char line.[i] then begin
      let j = ref i in
      while !j < n && is_id_char line.[!j] do incr j done;
      let tok = String.sub line i (!j - i) in
      let acc =
        if String.length tok > 3 && String.sub tok 0 3 = "RP-" then tok :: acc
        else acc
      in
      tokens !j acc
    end
    else tokens (i + 1) acc
  in
  List.rev (tokens start [])

let find_substring hay needle =
  let n = String.length hay and m = String.length needle in
  let rec go i =
    if i + m > n then None
    else if String.sub hay i m = needle then Some i
    else go (i + 1)
  in
  go 0

(* (line, rule) pairs suppressed in this text. *)
let suppressions text =
  let acc = ref [] in
  List.iteri
    (fun i line ->
      match find_substring line allow_marker with
      | None -> ()
      | Some at ->
          let ids = rule_ids_after line (at + String.length allow_marker) in
          List.iter
            (fun id -> acc := (i + 1, id) :: (i + 2, id) :: !acc)
            ids)
    (String.split_on_char '\n' text);
  !acc

(* ------------------------------------------------------------------ *)
(* Running                                                             *)
(* ------------------------------------------------------------------ *)

type finding = { file : string; diag : Diagnostic.t }

type report = {
  findings : finding list;  (** survivors, sorted file-major *)
  files : int;
  suppressed : int;
  baselined : int;
}

let compare_pair (a1, a2) (b1, b2) =
  let c = Int.compare a1 b1 in
  if c <> 0 then c else Int.compare a2 b2

let compare_finding a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let span_key = function
      | Some s -> (s.Loc.start.Loc.line, s.Loc.start.Loc.col)
      | None -> (0, 0)
    in
    let c =
      compare_pair (span_key a.diag.Diagnostic.span)
        (span_key b.diag.Diagnostic.span)
    in
    if c <> 0 then c
    else String.compare a.diag.Diagnostic.rule b.diag.Diagnostic.rule

let selected_passes families =
  match families with
  | [] -> List.map snd passes
  | fs ->
      List.filter_map
        (fun (name, check) -> if List.mem name fs then Some check else None)
        passes

let run ?(baseline = Baseline.empty) ?(families = []) sources =
  ignore (rules ());
  let checks = selected_passes families in
  let suppressed = ref 0 and baselined = ref 0 and acc = ref [] in
  let nfiles = ref 0 in
  List.iter
    (fun (path, text) ->
      incr nfiles;
      match Source.parse_text ~path text with
      | Error { Source.span; reason } ->
          acc :=
            { file = Source.normalize_path path;
              diag = Drule.diag r_parse ~span "%s" reason }
            :: !acc
      | Ok src ->
          let allows = suppressions text in
          let emit d =
            let line =
              match d.Diagnostic.span with
              | Some s -> s.Loc.start.Loc.line
              | None -> 0
            in
            if List.mem (line, d.Diagnostic.rule) allows then incr suppressed
            else if Baseline.matches baseline ~file:src.Source.path d then
              incr baselined
            else acc := { file = src.Source.path; diag = d } :: !acc
          in
          List.iter (fun check -> check src emit) checks)
    sources;
  (* Under --family filtering, a baseline entry for an unselected rule
     never had a chance to match; only selected families can be stale. *)
  let could_fire (e : Baseline.entry) =
    families = []
    ||
    match Drule.find e.Baseline.rule with
    | Some r -> List.mem r.Drule.family families
    | None -> true
  in
  let stale =
    List.map
      (fun (e : Baseline.entry) ->
        {
          file = baseline.Baseline.source;
          diag =
            Drule.diag r_stale_baseline
              "baseline entry \"%s %s%s\" matched no finding; prune it"
              e.Baseline.rule e.Baseline.path
              (match e.Baseline.line with
              | Some l -> ":" ^ string_of_int l
              | None -> "");
        })
      (List.filter could_fire (Baseline.unused baseline))
  in
  {
    findings = List.sort compare_finding (stale @ !acc);
    files = !nfiles;
    suppressed = !suppressed;
    baselined = !baselined;
  }

(* ------------------------------------------------------------------ *)
(* File discovery                                                      *)
(* ------------------------------------------------------------------ *)

let skip_dirs = [ "_build"; ".git"; "fixtures"; "snapshots" ]

let discover roots =
  let acc = ref [] in
  let rec visit path =
    if Sys.is_directory path then begin
      if not (List.mem (Filename.basename path) skip_dirs) then
        Array.iter
          (fun entry -> visit (Filename.concat path entry))
          (let entries = Sys.readdir path in
           Array.sort String.compare entries;
           entries)
    end
    else if Filename.check_suffix path ".ml" then acc := path :: !acc
  in
  List.iter
    (fun root -> if Sys.file_exists root then visit root)
    roots;
  List.sort String.compare (List.rev_map Source.normalize_path !acc)

let run_paths ?baseline ?families roots =
  let files = discover roots in
  let sources =
    List.map
      (fun path ->
        (path, In_channel.with_open_text path In_channel.input_all))
      files
  in
  run ?baseline ?families sources

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let summary_counts report =
  let count sev =
    List.length
      (List.filter
         (fun f -> f.diag.Diagnostic.severity = sev)
         report.findings)
  in
  (count Severity.Error, count Severity.Warning, count Severity.Hint)

let render_text report =
  let buf = Buffer.create 256 in
  List.iter
    (fun f ->
      Buffer.add_string buf
        (Diagnostic.to_string ~file:f.file f.diag);
      Buffer.add_char buf '\n')
    report.findings;
  let e, w, h = summary_counts report in
  Buffer.add_string buf
    (if report.findings = [] then
       Printf.sprintf "devlint: %d files clean (%d suppressed, %d baselined)\n"
         report.files report.suppressed report.baselined
     else
       Printf.sprintf
         "devlint: %d files, %d error(s), %d warning(s), %d hint(s) (%d \
          suppressed, %d baselined)\n"
         report.files e w h report.suppressed report.baselined);
  Buffer.contents buf

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let render_json report =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "{\"version\":1,\"tool\":\"relpipe devlint\",\"findings\":[";
  List.iteri
    (fun i f ->
      if i > 0 then Buffer.add_char buf ',';
      let span =
        match f.diag.Diagnostic.span with
        | None -> "null"
        | Some { Loc.start; stop } ->
            Printf.sprintf
              "{\"line\":%d,\"col\":%d,\"end_line\":%d,\"end_col\":%d}"
              start.Loc.line start.Loc.col stop.Loc.line stop.Loc.col
      in
      Buffer.add_string buf
        (Printf.sprintf
           "{\"file\":\"%s\",\"rule\":\"%s\",\"severity\":\"%s\",\"message\":\"%s\",\"span\":%s}"
           (json_escape f.file)
           (json_escape f.diag.Diagnostic.rule)
           (Severity.to_string f.diag.Diagnostic.severity)
           (json_escape f.diag.Diagnostic.message)
           span))
    report.findings;
  let e, w, h = summary_counts report in
  Buffer.add_string buf
    (Printf.sprintf
       "],\"summary\":{\"files\":%d,\"error\":%d,\"warning\":%d,\"hint\":%d,\"suppressed\":%d,\"baselined\":%d}}"
       report.files e w h report.suppressed report.baselined);
  Buffer.contents buf

let exit_code report =
  Severity.exit_code
    (Diagnostic.max_severity (List.map (fun f -> f.diag) report.findings))
